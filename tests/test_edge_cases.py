"""Degenerate shapes and robustness edges across the whole stack."""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG, TransitiveClosure, region_bounds
from repro.heuristics import AMDMaxOccupancyScheduler, CriticalPathHeuristic, list_schedule
from repro.ir import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.parallel import ParallelACOScheduler, RegionDeviceData
from repro.pipeline import CompilePipeline
from repro.rp import peak_pressure
from repro.schedule import Schedule, validate_schedule


@pytest.fixture
def single_instruction():
    b = RegionBuilder("one")
    b.inst("v_mov", defs=["v0"])
    return b.live_out("v0").build()


@pytest.fixture
def no_registers():
    """Instructions with empty Def/Use sets (barriers, nops)."""
    b = RegionBuilder("nops")
    for _ in range(3):
        b.inst("s_branch")
    return b.build()


@pytest.fixture
def fully_serial():
    b = RegionBuilder("serial")
    b.inst("op5", defs=["v0"])
    b.inst("op5", defs=["v1"], uses=["v0"])
    b.inst("op5", defs=["v2"], uses=["v1"])
    return b.live_out("v2").build()


class TestSingleInstruction:
    def test_everything_handles_n_equals_1(self, single_instruction, vega):
        ddg = DDG(single_instruction)
        assert ddg.roots == (0,)
        assert TransitiveClosure(ddg).ready_list_upper_bound() == 1
        assert region_bounds(ddg).length == 1
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        assert schedule.length == 1
        result = SequentialACOScheduler(vega).schedule(ddg)
        assert result.length == 1
        par = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=1)).schedule(ddg)
        assert par.length == 1
        # Both passes are provably optimal: no time spent.
        assert par.seconds == 0.0

    def test_pipeline_skips_aco(self, single_instruction, vega):
        pipeline = CompilePipeline(vega, scheduler=SequentialACOScheduler(vega))
        outcome = pipeline.compile_region(DDG(single_instruction))
        assert not outcome.aco_invoked


class TestNoRegisters:
    def test_zero_pressure_everywhere(self, no_registers, vega):
        ddg = DDG(no_registers)
        assert ddg.num_edges == 0
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        assert peak_pressure(schedule) == {}
        validate_schedule(schedule, ddg, vega)

    def test_device_image_handles_empty_register_set(self, no_registers, vega):
        data = RegionDeviceData(DDG(no_registers), vega)
        assert data.num_registers == 0
        par = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=1)).schedule(
            DDG(no_registers)
        )
        validate_schedule(par.schedule, DDG(no_registers), vega)


class TestFullySerial:
    def test_no_scheduling_freedom(self, fully_serial, vega):
        ddg = DDG(fully_serial)
        assert TransitiveClosure(ddg).ready_list_upper_bound() == 1
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        assert schedule.length == 11  # 5 + 5 + 1 issue cycles
        result = SequentialACOScheduler(vega).schedule(ddg, seed=0)
        assert result.length == 11  # nothing to improve; LB met

    def test_colony_with_capacity_one(self, fully_serial, vega):
        """The available list never exceeds one entry: the tightest
        possible preallocation, exercising the swap-remove at capacity."""
        par = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=1)).schedule(
            DDG(fully_serial), seed=1
        )
        validate_schedule(par.schedule, DDG(fully_serial), vega)


class TestParameterEdges:
    def test_stagnation_limit_one_stops_fast(self, vega):
        from conftest import make_region

        params = ACOParams(termination_conditions=(1, 1, 1))
        ddg = DDG(make_region("reduce", 1, 40))
        result = SequentialACOScheduler(vega, params=params).schedule(ddg, seed=1)
        for p in (result.pass1, result.pass2):
            if p.invoked and not p.hit_lower_bound:
                # At most 1 improvement-free iteration after the last
                # improving one; with max_iterations as the other cap.
                assert p.iterations <= params.max_iterations

    def test_zero_exploitation_is_pure_roulette(self, tiny_machine, fig1_ddg):
        params = ACOParams(exploitation_prob=0.0)
        result = SequentialACOScheduler(tiny_machine, params=params).schedule(
            fig1_ddg, seed=3
        )
        validate_schedule(result.schedule, fig1_ddg, tiny_machine)

    def test_full_exploitation_is_greedy_plus_pheromone(self, tiny_machine, fig1_ddg):
        params = ACOParams(exploitation_prob=1.0)
        result = SequentialACOScheduler(tiny_machine, params=params).schedule(
            fig1_ddg, seed=3
        )
        validate_schedule(result.schedule, fig1_ddg, tiny_machine)

    def test_single_block_launch(self, tiny_machine, fig1_ddg):
        par = ParallelACOScheduler(
            tiny_machine, gpu_params=GPUParams(blocks=1)
        ).schedule(fig1_ddg, seed=3)
        assert peak_pressure(par.schedule) == par.peak


class TestLargeRegionSmoke:
    def test_colony_handles_300_instructions(self, vega):
        """One iteration over a large region: capacity bounds, buffers and
        accounting all hold up at the suite's default size cap."""
        from conftest import make_region

        ddg = DDG(make_region("stencil", 3, 300))
        data = RegionDeviceData(ddg, vega)
        assert data.ready_capacity <= 300
        params = ACOParams(max_iterations=1, termination_conditions=(1, 1, 1))
        result = ParallelACOScheduler(
            vega, params=params, gpu_params=GPUParams(blocks=1)
        ).schedule(ddg, seed=0)
        validate_schedule(result.schedule, ddg, vega)
