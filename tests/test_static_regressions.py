"""Pinned regression tests for the self-scan fixes.

The static analyzer's self-scan surfaced real violations that were fixed in
the same change: ``set()`` iteration in the LUC pressure tracker (DET-002),
naked ``random.Random`` construction in both sequential schedulers
(RNG-101), and hand-rolled ``seconds`` accumulators across the scheduler
hot paths (ACC-302). Every fix was chosen to be *bit-identical* —
``dict.fromkeys`` dedups in insertion order, ``launch_rng`` wraps the same
constructor, and ``HostSecondsLedger`` keeps the exact float addition
order. These pins were captured BEFORE the fixes; if any fix perturbed a
seeded schedule or a simulated-seconds total, these fail.
"""

import hashlib
import random

from repro.aco.seeding import launch_rng
from repro.aco.sequential import SequentialACOScheduler
from repro.aco.weighted import WeightedSumACOScheduler
from repro.config import GPUParams
from repro.ddg.graph import DDG
from repro.machine.targets import amd_vega20, simple_test_target
from repro.parallel.multi_region import BatchItem, MultiRegionScheduler
from repro.suite.patterns import pattern_region
from repro.timing import HostSecondsLedger

import pytest

#: Captured on the pre-fix tree (seed, pattern, size as noted below).
SEQUENTIAL_PINS = {
    3: {"length": 39, "order_sha": "482e9118436c2863", "seconds": 0.00026319600000000005},
    7: {"length": 99, "order_sha": "e7dfa683459c93bf", "seconds": 0.0004261600000000001},
    11: {"length": 119, "order_sha": "40b982f858c77209", "seconds": 0.00013064880000000003},
}
SEQUENTIAL_REGIONS = {3: ("transform", 24), 7: ("gemm_tile", 30), 11: ("reduce", 18)}

WEIGHTED_PINS = {
    3: {"length": 35, "seconds": 0.00011007599999999998},
    7: {"length": 38, "seconds": 6.383599999999999e-05},
}

BATCH_PIN = {
    "seconds": 0.00010910875000000001,
    "unbatched_seconds": 0.00025002069444444444,
}


def _region(seed, size, pattern="transform"):
    return pattern_region(pattern, random.Random(seed), size, name="pin%d" % seed)


def _order_sha(schedule):
    order = schedule.order() if callable(schedule.order) else schedule.order
    return hashlib.sha256(repr(tuple(order)).encode()).hexdigest()[:16]


class TestSequentialPins:
    """launch_rng + ledger refactor left the two-pass scheduler bit-identical."""

    @pytest.mark.parametrize("seed", sorted(SEQUENTIAL_PINS))
    def test_pinned_schedule_and_seconds(self, seed):
        pattern, size = SEQUENTIAL_REGIONS[seed]
        result = SequentialACOScheduler(simple_test_target()).schedule(
            DDG(_region(seed, size, pattern)), seed=seed
        )
        pin = SEQUENTIAL_PINS[seed]
        assert result.schedule.length == pin["length"]
        assert _order_sha(result.schedule) == pin["order_sha"]
        assert result.seconds == pin["seconds"]


class TestWeightedPins:
    """Same for the weighted-sum ablation scheduler."""

    @pytest.mark.parametrize("seed", sorted(WEIGHTED_PINS))
    def test_pinned_schedule_and_seconds(self, seed):
        result = WeightedSumACOScheduler(
            simple_test_target(), pressure_weight=0.001
        ).schedule(DDG(_region(seed, 20)), seed=seed)
        pin = WEIGHTED_PINS[seed]
        assert result.schedule.length == pin["length"]
        assert result.seconds == pin["seconds"]


class TestBatchPins:
    """multi_region's host ledger kept batch seconds bit-identical."""

    def test_pinned_batch_seconds(self):
        scheduler = MultiRegionScheduler(amd_vega20(), gpu_params=GPUParams(blocks=4))
        batch = scheduler.schedule_batch(
            [BatchItem(DDG(_region(s, 16)), seed=s) for s in (1, 2, 3, 4)]
        )
        assert batch.seconds == BATCH_PIN["seconds"]
        assert batch.unbatched_seconds == BATCH_PIN["unbatched_seconds"]


class TestNewPrimitives:
    def test_launch_rng_matches_random_random(self):
        a, b = launch_rng(42), random.Random(42)
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_ledger_matches_bare_accumulation(self):
        charges = [3e-7, 1.1e-6, 2.5e-9, 4e-8] * 50
        ledger = HostSecondsLedger(40e-6)
        bare = 40e-6
        for value in charges:
            ledger.charge(value)
            bare += value
        assert ledger.total == bare  # identical addition order -> identical bits

    def test_ledger_rejects_negative(self):
        with pytest.raises(ValueError):
            HostSecondsLedger().charge(-1e-9)
        with pytest.raises(ValueError):
            HostSecondsLedger(-1.0)

    def test_luc_dedup_is_insertion_ordered(self):
        # dict.fromkeys preserves first-occurrence order, unlike set().
        assert list(dict.fromkeys([3, 1, 3, 2, 1])) == [3, 1, 2]
