"""Tests for the SIMT cost-accounting simulator."""

import numpy as np
import pytest

from repro.errors import GPUSimError
from repro.gpusim import GPUDevice, KernelAccounting, TransferAccounting, reduction_cycles
from repro.timing import GPUCostModel


class TestGPUDevice:
    def test_defaults_match_radeon_vii(self):
        device = GPUDevice()
        assert device.compute_units == 60
        assert device.wavefront_size == 64
        assert device.concurrent_wavefronts == 240

    def test_batches(self):
        device = GPUDevice()
        assert device.batches(1) == 1
        assert device.batches(180) == 1  # the paper's launch fits one batch
        assert device.batches(240) == 1
        assert device.batches(241) == 2

    def test_batches_exact_capacity_multiples(self):
        device = GPUDevice()
        cap = device.concurrent_wavefronts
        for k in (1, 2, 3):
            assert device.batches(k * cap) == k
            assert device.batches(k * cap + 1) == k + 1

    def test_batches_single_wavefront_device(self):
        device = GPUDevice(compute_units=1, simds_per_cu=1)
        assert device.concurrent_wavefronts == 1
        assert device.batches(1) == 1
        assert device.batches(7) == 7

    def test_validation(self):
        with pytest.raises(GPUSimError):
            GPUDevice(compute_units=0)
        with pytest.raises(GPUSimError):
            GPUDevice().batches(0)
        with pytest.raises(GPUSimError):
            GPUDevice().batches(-3)


class TestKernelAccounting:
    def _device(self, **overrides):
        return GPUDevice(cost=GPUCostModel(**overrides))

    def test_compute_charge(self):
        device = self._device(cycles_per_op=2.0)
        acc = KernelAccounting(device, 4, coalesced=True)
        acc.charge_compute(np.array([1.0, 2.0, 3.0, 4.0]))
        assert acc.wavefront_cycles.tolist() == [2.0, 4.0, 6.0, 8.0]

    def test_memory_coalescing_factor(self):
        device = self._device(cycles_per_transaction=10.0, uncoalesced_factor=16.0)
        soa = KernelAccounting(device, 1, coalesced=True)
        aos = KernelAccounting(device, 1, coalesced=False)
        soa.charge_memory(5.0)
        aos.charge_memory(5.0)
        assert aos.wavefront_cycles[0] == pytest.approx(16 * soa.wavefront_cycles[0])

    def test_alloc_only_in_dynamic_mode(self):
        device = self._device(alloc_cycles=100.0)
        static = KernelAccounting(device, 1, coalesced=True, dynamic_alloc=False)
        dynamic = KernelAccounting(device, 1, coalesced=True, dynamic_alloc=True)
        static.charge_alloc(3.0)
        dynamic.charge_alloc(3.0)
        assert static.wavefront_cycles[0] == 0.0
        assert dynamic.wavefront_cycles[0] == 300.0

    def test_uniform_charge(self):
        acc = KernelAccounting(self._device(), 3, coalesced=True)
        acc.charge_uniform_cycles(7.0)
        assert np.all(acc.wavefront_cycles == 7.0)

    def test_kernel_seconds_is_max_within_batch(self):
        device = self._device(clock_hz=1e9)
        acc = KernelAccounting(device, 3, coalesced=True)
        acc.wavefront_cycles[:] = [100.0, 500.0, 200.0]
        assert acc.kernel_seconds() == pytest.approx(500.0 / 1e9)

    def test_kernel_seconds_sums_batches(self):
        device = GPUDevice(compute_units=1, simds_per_cu=1, cost=GPUCostModel(clock_hz=1e9))
        acc = KernelAccounting(device, 2, coalesced=True)
        acc.wavefront_cycles[:] = [100.0, 300.0]
        assert acc.kernel_seconds() == pytest.approx(400.0 / 1e9)

    def test_zero_wavefronts_rejected(self):
        with pytest.raises(GPUSimError):
            KernelAccounting(GPUDevice(), 0, coalesced=True)
        with pytest.raises(GPUSimError):
            KernelAccounting(GPUDevice(), -1, coalesced=True)

    def test_launch_batches_match_device(self):
        acc = KernelAccounting(GPUDevice(), 241, coalesced=True)
        assert acc.batches() == 2

    def test_attributed_seconds_sums_to_kernel_seconds(self):
        device = self._device(clock_hz=1e9)
        acc = KernelAccounting(device, 4, coalesced=True, dynamic_alloc=True)
        acc.charge_compute(np.array([10.0, 20.0, 30.0, 40.0]))
        acc.charge_memory(3.0)
        acc.charge_alloc(2.0)
        acc.charge_uniform_cycles(5.0)
        split = acc.attributed_seconds()
        assert set(split) == {"compute", "memory", "alloc", "uniform"}
        assert sum(split.values()) == pytest.approx(acc.kernel_seconds())
        assert all(v >= 0 for v in split.values())
        # Shares follow the cycle shares.
        totals = acc.charge_totals()
        total_cycles = sum(totals.values())
        for name, value in split.items():
            expected = acc.kernel_seconds() * totals[name + "_cycles"] / total_cycles
            assert value == pytest.approx(expected)

    def test_attributed_seconds_zero_cycles(self):
        acc = KernelAccounting(GPUDevice(), 2, coalesced=True)
        split = acc.attributed_seconds()
        assert split == {"compute": 0.0, "memory": 0.0, "alloc": 0.0, "uniform": 0.0}


class TestTransferAccounting:
    def test_batched_single_call(self):
        device = GPUDevice(cost=GPUCostModel(per_copy_call=1e-6, copy_bandwidth=1e9))
        transfer = TransferAccounting(device, batched=True)
        for _ in range(10):
            transfer.add_array(1000)
        # 1 batched H2D call + 1 result copy-back + bytes.
        assert transfer.seconds() == pytest.approx(2e-6 + 10_000 / 1e9)

    def test_unbatched_pays_per_array(self):
        device = GPUDevice(cost=GPUCostModel(per_copy_call=1e-6, copy_bandwidth=1e9))
        batched = TransferAccounting(device, batched=True)
        naive = TransferAccounting(device, batched=False)
        for t in (batched, naive):
            for _ in range(10):
                t.add_array(1000)
        assert naive.seconds() > batched.seconds()

    def test_unbatched_exact_math(self):
        device = GPUDevice(cost=GPUCostModel(per_copy_call=1e-6, copy_bandwidth=1e9))
        naive = TransferAccounting(device, batched=False)
        for _ in range(7):
            naive.add_array(500)
        # 7 per-array H2D calls + 1 copy-back, plus byte time.
        assert naive.seconds() == pytest.approx(8 * 1e-6 + 3500 / 1e9)
        # The batched/unbatched gap is exactly the saved per-call overhead.
        batched = TransferAccounting(device, batched=True)
        for _ in range(7):
            batched.add_array(500)
        assert naive.seconds() - batched.seconds() == pytest.approx(6 * 1e-6)

    def test_empty_transfer_still_pays_calls(self):
        device = GPUDevice(cost=GPUCostModel(per_copy_call=1e-6, copy_bandwidth=1e9))
        # No arrays added: one (degenerate) H2D call + the copy-back.
        for batched in (True, False):
            transfer = TransferAccounting(device, batched=batched)
            assert transfer.seconds() == pytest.approx(2e-6)

    def test_add_ndarray(self):
        transfer = TransferAccounting(GPUDevice(), batched=True)
        transfer.add_ndarray(np.zeros(16, dtype=np.int32))
        assert transfer.total_bytes == 64

    def test_negative_bytes_rejected(self):
        with pytest.raises(GPUSimError):
            TransferAccounting(GPUDevice(), batched=True).add_array(-1)


class TestReduction:
    def test_zero_for_single_thread(self):
        assert reduction_cycles(1, GPUCostModel()) == 0.0

    def test_logarithmic(self):
        cost = GPUCostModel()
        small = reduction_cycles(64, cost)
        big = reduction_cycles(64 * 64, cost)
        assert big == pytest.approx(2 * small)
