"""Tests for the kernel rollup's tolerance of ``backend``-less launches.

Satellite of the observability PR: ``repro.telemetry.report --kernels``
must keep working on traces recorded before the ``backend`` field
existed — launches without it land under ``backend="unknown"`` instead
of crashing or vanishing from the rollup.
"""

import json

from repro.profile.attribution import kernel_phase_rollup, render_kernel_rollup
from repro.telemetry.report import main as report_main


def _launch(seq, pass_index=1, kernel_seconds=1e-4, **extra):
    record = {
        "v": 1, "seq": seq, "event": "kernel_launch", "region": "r",
        "pass_index": pass_index, "wavefronts": 4, "ants": 8, "iterations": 2,
        "kernel_seconds": kernel_seconds, "transfer_seconds": 1e-6,
        "launch_seconds": 4e-5, "compute_cycles": 10, "memory_cycles": 5,
        "alloc_cycles": 0, "uniform_cycles": 1,
        "serialized_selection_waves": 0, "serialized_stall_waves": 0,
        "dead_ants": 0, "ready_peak": 4, "ready_capacity": 8,
    }
    record.update(extra)
    return record


class TestRollupBackendTolerance:
    def test_missing_backend_lands_under_unknown(self):
        rollups = kernel_phase_rollup([_launch(0), _launch(1)])
        phase = rollups[1]
        assert phase.backend_seconds == {"unknown": 2e-4}
        assert phase.launches == 2

    def test_mixed_records_split_by_backend(self):
        rollups = kernel_phase_rollup([
            _launch(0, backend="vectorized", kernel_seconds=3e-4),
            _launch(1, backend="loop"),
            _launch(2),  # legacy record, no backend field
        ])
        phase = rollups[1]
        assert phase.backend_seconds == {
            "vectorized": 3e-4,
            "loop": 1e-4,
            "unknown": 1e-4,
        }
        # The totals are unaffected by how launches carry the label.
        assert phase.kernel_seconds == 5e-4

    def test_render_shows_backend_mix_line(self):
        text = render_kernel_rollup(
            kernel_phase_rollup([
                _launch(0, backend="vectorized", kernel_seconds=3e-4),
                _launch(1),
            ])
        )
        assert "backend mix:" in text
        mix_line = next(l for l in text.splitlines() if "backend mix" in l)
        # Sorted by descending seconds: vectorized before unknown.
        assert mix_line.index("vectorized") < mix_line.index("unknown")
        assert "unknown" in mix_line

    def test_render_without_launches_unchanged(self):
        assert "nothing to attribute" in render_kernel_rollup({})


class TestReportCLI:
    def test_kernels_flag_tolerates_backendless_trace(self, tmp_path, capsys):
        trace = tmp_path / "legacy.jsonl"
        with open(trace, "w") as fh:
            for record in (
                {
                    "v": 1, "seq": 0, "event": "region_start", "region": "r",
                    "size": 10, "scheduler": "s",
                },
                _launch(1),
                _launch(2, backend="vectorized"),
            ):
                fh.write(json.dumps(record) + "\n")
        assert report_main([str(trace), "--kernels"]) == 0
        out = capsys.readouterr().out
        assert "backend mix:" in out
        assert "unknown" in out
        assert "vectorized" in out
