"""Tests for the DDG/closure linter, including bitset-tampering faults."""

import types

import pytest
from hypothesis import given, settings

from repro.analysis import (
    audit_ready_bound,
    lint_closure,
    lint_ddg,
    max_antichain_size,
)
from repro.ddg import DDG, TransitiveClosure
from repro.errors import VerificationError
from repro.ir.builder import RegionBuilder

from conftest import ddgs


def _empty_ddg():
    """A DDG-shaped stub with zero instructions (real regions forbid it)."""
    return types.SimpleNamespace(
        num_instructions=0,
        successors=(),
        predecessors=(),
        region=types.SimpleNamespace(name="empty"),
    )


class TestLintDDG:
    def test_figure1_clean(self, fig1_ddg):
        report = lint_ddg(fig1_ddg)
        assert report.ok, report.violations
        assert report.checks > 20

    @given(ddgs(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_generated_regions_clean(self, ddg):
        assert lint_ddg(ddg).ok

    def test_duality_tamper_caught(self, fig1_ddg):
        """Drop one predecessor entry: the successor lists now claim an
        edge the predecessor lists do not know about."""
        preds = [list(p) for p in fig1_ddg.predecessors]
        victim = next(i for i in range(fig1_ddg.num_instructions) if preds[i])
        preds[victim] = preds[victim][1:]
        tampered = types.SimpleNamespace(
            num_instructions=fig1_ddg.num_instructions,
            region=fig1_ddg.region,
            successors=fig1_ddg.successors,
            predecessors=tuple(tuple(p) for p in preds),
            edges=fig1_ddg.edges,
            num_predecessors=fig1_ddg.num_predecessors,
            roots=fig1_ddg.roots,
            leaves=fig1_ddg.leaves,
        )
        report = lint_ddg(tampered)
        assert "duality" in report.codes()

    def test_program_order_tamper_caught(self, fig1_ddg):
        """A backwards edge (dst < src) violates the topological layout."""
        succs = [list(s) for s in fig1_ddg.successors]
        preds = [list(p) for p in fig1_ddg.predecessors]
        succs[5].append((0, 1))
        preds[0].append((5, 1))
        tampered = types.SimpleNamespace(
            num_instructions=fig1_ddg.num_instructions,
            region=fig1_ddg.region,
            successors=tuple(tuple(s) for s in succs),
            predecessors=tuple(tuple(p) for p in preds),
            edges=fig1_ddg.edges,
            num_predecessors=fig1_ddg.num_predecessors,
            roots=fig1_ddg.roots,
            leaves=fig1_ddg.leaves,
        )
        report = lint_ddg(tampered)
        assert "program-order" in report.codes()


class TestLintClosure:
    def test_figure1_clean(self, fig1_ddg):
        assert lint_closure(TransitiveClosure(fig1_ddg)).ok

    @given(ddgs(max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_generated_closures_clean(self, ddg):
        assert lint_closure(TransitiveClosure(ddg)).ok

    def test_bitset_tamper_caught(self, fig1_ddg):
        """Flip one reachability bit: the DFS referee must disagree."""
        closure = TransitiveClosure(fig1_ddg)
        closure.descendants[0] ^= 1 << (fig1_ddg.num_instructions - 1)
        report = lint_closure(closure)
        assert "transitivity" in report.codes()

    def test_reflexive_tamper_caught(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        closure.descendants[2] |= 1 << 2
        report = lint_closure(closure)
        assert "irreflexive" in report.codes()

    def test_independence_tamper_caught(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        closure.independent[1] = 0
        report = lint_closure(closure)
        assert "independence" in report.codes()


class TestClosureEdgeCases:
    def test_empty_ddg(self):
        closure = TransitiveClosure(_empty_ddg())
        assert closure.num_instructions == 0
        assert closure.ready_list_upper_bound() == 0
        assert closure.max_independent_count() == 0
        assert max_antichain_size(closure) == 0

    def test_single_node(self):
        b = RegionBuilder("one")
        b.inst("op1", defs=["v0"])
        ddg = DDG(b.live_out("v0").build())
        closure = TransitiveClosure(ddg)
        assert closure.ready_list_upper_bound() == 1
        assert closure.independent_count(0) == 0
        assert max_antichain_size(closure) == 1

    def test_disconnected_components(self):
        """Two independent chains: the bound is the antichain width 2."""
        b = RegionBuilder("two-chains")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"])
        b.inst("op1", defs=["v2"], uses=["v0"])
        b.inst("op1", defs=["v3"], uses=["v1"])
        ddg = DDG(b.live_out("v2", "v3").build())
        closure = TransitiveClosure(ddg)
        assert closure.are_independent(0, 1)
        assert not closure.are_independent(0, 2)
        assert max_antichain_size(closure) == 2
        assert closure.ready_list_upper_bound() >= 2

    @given(ddgs(max_size=14))
    @settings(max_examples=30, deadline=None)
    def test_bound_dominates_true_antichain(self, ddg):
        """Section V-A's 1 + max-independent bound dominates the true
        maximum antichain (brute-forced on small DDGs)."""
        closure = TransitiveClosure(ddg)
        assert max_antichain_size(closure) <= closure.ready_list_upper_bound()

    def test_figure1_antichain_exact(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        # A, B, C, D are pairwise independent; nothing larger exists.
        assert max_antichain_size(closure) == 4
        assert closure.ready_list_upper_bound() == 5


class TestAuditReadyBound:
    def test_observed_within_bound(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        report = audit_ready_bound(closure, observed_peak=4)
        assert report.ok
        assert report.stats["bound"] == 5

    def test_overshoot_caught(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        report = audit_ready_bound(closure, observed_peak=6)
        assert "ready-bound" in report.codes()
        with pytest.raises(VerificationError):
            report.raise_if_failed()
