"""Tests for the visualization/tooling helpers."""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG
from repro.heuristics import CriticalPathHeuristic, list_schedule
from repro.ir.registers import VGPR
from repro.machine import amd_vega20
from repro.schedule import Schedule
from repro.viz import compare_schedules, ddg_to_dot, pressure_sparkline, schedule_timeline

from conftest import ddgs


class TestDot:
    def test_structure(self, fig1_ddg):
        dot = ddg_to_dot(fig1_ddg)
        assert dot.startswith('digraph "figure1"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(fig1_ddg.edges)
        for inst in fig1_ddg.region:
            assert "n%d [" % inst.index in dot
            assert inst.label in dot

    def test_critical_path_highlighted(self, fig1_ddg):
        dot = ddg_to_dot(fig1_ddg)
        assert "lightcoral" in dot  # C -> F -> G are critical
        plain = ddg_to_dot(fig1_ddg, highlight_critical_path=False)
        assert "lightcoral" not in plain

    def test_latency_labels(self, fig1_ddg):
        dot = ddg_to_dot(fig1_ddg)
        assert 'label="5"' in dot  # C's latency

    @given(ddgs(max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_always_well_formed(self, ddg):
        dot = ddg_to_dot(ddg)
        assert dot.count("{") == dot.count("}")
        assert dot.count("[") == dot.count("]")


class TestTimeline:
    def test_marks_issue_and_shadow(self, fig1_ddg, vega):
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        text = schedule_timeline(schedule)
        assert "figure1" in text
        assert text.count("#") == 7  # one issue mark per instruction
        assert "-" in text  # latency shadows visible

    def test_downsampling(self, fig1_region):
        schedule = Schedule(fig1_region, [0, 1, 2, 3, 500, 501, 502])
        text = schedule_timeline(schedule, width=40)
        assert "cycle(s)/column" in text
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) <= 41


class TestSparkline:
    def test_reflects_peak(self, fig1_region):
        ant1 = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        text = pressure_sparkline(ant1, VGPR)
        assert "peak 4" in text
        assert "@" in text  # the peak hits the top level

    def test_defaults_to_hottest_class(self, fig1_region):
        schedule = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        assert "VGPR" in pressure_sparkline(schedule)

    def test_downsamples_long_profiles(self):
        from conftest import make_region

        region = make_region("transform", 5, 200)
        schedule = Schedule.from_order(region, list(range(200)))
        text = pressure_sparkline(schedule, width=50)
        assert "slot(s)/char" in text


class TestCompare:
    def test_summary(self, fig1_region):
        a = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        b = Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6])
        text = compare_schedules(a, b, names=("ant1", "ant2"))
        assert "VGPR peak" in text
        assert "(-)" in text  # ant2's peak is lower

    def test_rejects_mismatched_regions(self, fig1_region, chain_region):
        a = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        b = Schedule.from_order(chain_region, [0, 1, 2, 3])
        with pytest.raises(ValueError):
            compare_schedules(a, b)
