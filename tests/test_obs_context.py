"""Tests for trace-context propagation: ids, stamping and correlation."""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, FilterParams, GPUParams, ResilienceParams
from repro.ddg import DDG
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.obs import TraceContext, current_trace, region_trace, trace_scope
from repro.parallel import BatchItem, MultiRegionScheduler, ParallelACOScheduler
from repro.pipeline import CompilePipeline
from repro.profile import SpanProfiler, profile_session
from repro.resilience.ladder import schedule_with_resilience
from repro.resilience.log import ResilienceLog, resilience_log_session
from repro.telemetry import MemorySink, Telemetry
from repro.telemetry.schema import TRACE_CONTEXT_FIELDS, validate_event

from conftest import make_region


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(autouse=True)
def _clean_resilience_env(monkeypatch):
    for name in ("REPRO_DEADLINE", "REPRO_MAX_RETRIES", "REPRO_CHAOS", "REPRO_DEGRADE"):
        monkeypatch.setenv(name, "")


class TestTraceContext:
    def test_ids_are_deterministic(self):
        a = TraceContext.for_region("reduce_3", 40, 7)
        b = TraceContext.for_region("reduce_3", 40, 7)
        assert a == b
        assert a.trace_id == b.trace_id
        assert len(a.trace_id) == 16
        assert len(a.span_id) == 8
        assert a.parent_id is None

    def test_seed_and_fingerprint_separate_traces(self):
        base = TraceContext.for_region("reduce_3", 40, 7)
        assert TraceContext.for_region("reduce_3", 40, 8).trace_id != base.trace_id
        assert TraceContext.for_region("reduce_3", 41, 7).trace_id != base.trace_id
        assert TraceContext.for_region("reduce_4", 40, 7).trace_id != base.trace_id

    def test_child_chains_spans(self):
        root = TraceContext.for_region("r", 10, 0)
        child = root.child("pass1")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        # Deterministic: same label, same child.
        assert root.child("pass1") == child
        assert root.child("pass2") != child

    def test_fields_omit_parent_at_root(self):
        root = TraceContext.for_region("r", 10, 0)
        assert set(root.fields()) == {"trace_id", "span_id"}
        assert set(root.child("x").fields()) == set(TRACE_CONTEXT_FIELDS)

    def test_stack_scoping(self):
        assert current_trace() is None
        ctx = TraceContext.for_region("r", 10, 0)
        with trace_scope(ctx):
            assert current_trace() is ctx
            inner = ctx.child("inner")
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None

    def test_region_trace_is_idempotent(self):
        with region_trace("r", 10, 0) as outer:
            # A nested install (the ladder retrying with a rotated seed)
            # reuses the ambient trace instead of opening a new one.
            with region_trace("r", 10, 999) as inner:
                assert inner is outer
        assert current_trace() is None


class TestEventStamping:
    def test_emit_stamps_and_stays_schema_valid(self):
        sink = MemorySink()
        tele = Telemetry(sink)
        with region_trace("r", 10, 0) as ctx:
            tele.emit("region_start", region="r", size=10, scheduler="s")
        record = sink.records[0]
        assert record["trace_id"] == ctx.trace_id
        assert record["span_id"] == ctx.span_id
        validate_event(record)

    def test_emit_without_context_is_unstamped(self):
        sink = MemorySink()
        Telemetry(sink).emit("region_start", region="r", size=10, scheduler="s")
        assert "trace_id" not in sink.records[0]

    def test_explicit_fields_win_over_ambient(self):
        sink = MemorySink()
        tele = Telemetry(sink)
        with region_trace("r", 10, 0):
            tele.emit(
                "region_start", region="r", size=10, scheduler="s",
                span_id="deadbeef",
            )
        assert sink.records[0]["span_id"] == "deadbeef"


class TestSchedulerCorrelation:
    def test_sequential_scheduler_one_trace(self, machine):
        ddg = DDG(make_region("stencil", 3, 12))
        sink = MemorySink()
        scheduler = SequentialACOScheduler(
            machine, params=ACOParams(max_iterations=8), telemetry=Telemetry(sink)
        )
        scheduler.schedule(ddg, seed=5)
        tids = {r["trace_id"] for r in sink.records}
        assert len(tids) == 1
        expected = TraceContext.for_region(
            ddg.region.name, ddg.num_instructions, 5
        ).trace_id
        assert tids == {expected}

    def test_pipeline_one_trace_per_region(self, machine):
        from repro.config import SuiteParams
        from repro.suite import generate_suite

        suite = generate_suite(
            SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=3),
            max_region_size=60,
        )
        sink = MemorySink()
        tele = Telemetry(sink)
        pipeline = CompilePipeline(
            machine,
            scheduler=SequentialACOScheduler(machine, telemetry=tele),
            filters=FilterParams(cycle_threshold=0),
            telemetry=tele,
        )
        pipeline.compile_suite(suite)
        per_region = {}
        for r in sink.records:
            if "trace_id" in r and r.get("region"):
                per_region.setdefault(r["region"], set()).add(r["trace_id"])
        assert per_region
        assert all(len(tids) == 1 for tids in per_region.values())
        # Suite-level events have no region scope and stay unstamped.
        suite_events = [r for r in sink.records if r["event"].startswith("suite")]
        assert suite_events
        assert all("trace_id" not in r for r in suite_events)

    def test_ladder_retries_share_the_region_trace(self, machine):
        """The acceptance criterion: every retry, fault and downgrade of a
        chaotic region carries the region's one trace id, even though the
        retries rotate their seeds."""
        ddg = DDG(make_region("stencil", 4, 14))
        sink = MemorySink()
        tele = Telemetry(sink)
        scheduler = ParallelACOScheduler(
            machine,
            params=ACOParams(max_iterations=12),
            gpu_params=GPUParams(blocks=4),
            telemetry=tele,
        )
        with resilience_log_session(ResilienceLog()):
            outcome = schedule_with_resilience(
                scheduler, ddg, 5,
                ResilienceParams(enabled=True, max_retries=2),
                telemetry=tele,
                fault_plan=FaultPlan(seed=3, rates={"launch": 1.0}),
            )
        assert outcome.faults  # the plan guarantees a chaotic journey
        tids = {r["trace_id"] for r in sink.records if "trace_id" in r}
        assert len(tids) == 1
        resil = [r for r in sink.records if r["event"] in ("fault", "retry", "degrade")]
        assert resil
        assert all("trace_id" in r and "span_id" in r for r in resil)
        # Per-attempt child spans: distinct span ids under one parent.
        retries = [r for r in resil if r["event"] == "retry"]
        assert len({r["span_id"] for r in retries}) == len(retries)
        assert len({r["parent_id"] for r in retries}) == 1

    def test_batch_slots_get_distinct_traces(self, machine):
        items = [
            BatchItem(DDG(make_region("stencil", s, 10)), seed=s) for s in (1, 2, 3)
        ]
        sink = MemorySink()
        batcher = MultiRegionScheduler(
            machine,
            params=ACOParams(max_iterations=6),
            gpu_params=GPUParams(blocks=6),
            telemetry=Telemetry(sink),
        )
        batcher.schedule_batch(items)
        tids = {r["trace_id"] for r in sink.records if "trace_id" in r}
        # The generated regions share a *name*; the trace id (fingerprint +
        # seed) still separates the three slots — the very conflation the
        # name alone could not avoid.
        expected = {
            TraceContext.for_region(
                item.ddg.region.name, item.ddg.num_instructions, item.seed
            ).trace_id
            for item in items
        }
        assert tids == expected
        assert len(tids) == 3


class TestProfilerTraceKeys:
    def test_same_name_spans_split_across_traces(self):
        prof = SpanProfiler()
        with profile_session(prof):
            for seed in (1, 2):
                with region_trace("reduce_3", 20, seed):
                    with prof.span("region", "region"):
                        prof.charge_leaf("kernel", 1e-6)
        regions = [
            span for key, span in prof.root.children.items() if span.name == "region"
        ]
        assert len(regions) == 2  # one node per trace, not one merged node

    def test_same_trace_spans_still_merge(self):
        prof = SpanProfiler()
        with profile_session(prof):
            with region_trace("reduce_3", 20, 1):
                for _ in range(3):
                    with prof.span("iteration", "iteration"):
                        prof.charge(1e-6)
        # The three same-named spans share the ambient trace, so they merge
        # into ONE node (keyed by (name, trace) at the trace boundary).
        assert len(prof.root.children) == 1
        (node,) = prof.root.children.values()
        assert node.name == "iteration"
        assert node.count == 3

    def test_no_context_keeps_plain_name_keys(self):
        prof = SpanProfiler()
        with profile_session(prof):
            with prof.span("a"):
                prof.charge_leaf("leaf", 1.0)
        assert list(prof.root.children) == ["a"]
        assert list(prof.root.children["a"].children) == ["leaf"]
