"""Differential-testing harness: the construction backends are equivalent.

The parallel scheduler ships two interchangeable ant-construction engines —
the lockstep batch engine (``vectorized``) and the scalar per-ant reference
engine (``loop``). Their *decisions* must be bit-identical for a given
seed: same schedules, same costs, same iteration traces, same telemetry
event stream shape. Only the simulated cost accounting may differ (the
loop backend charges the divergent serialized-lane kernel).

``--backend-pairs A:B[,C:D...]`` selects which pairs are compared
(default ``loop:vectorized``); an ``X:X`` pair checks one backend against
itself, i.e. pure seeded determinism. The sequential scheduler runs over
the same hypothesis-generated regions as a third, independent
implementation: it cannot be bit-identical (different algorithm), so it is
held to the shared semantic invariants instead.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings

from repro.config import GPUParams
from repro.aco.sequential import SequentialACOScheduler
from repro.ddg import DDG
from repro.machine import amd_vega20
from repro.parallel import ParallelACOScheduler
from repro.rp.liveness import peak_pressure
from repro.schedule.validate import validate_schedule
from repro.telemetry import MemorySink, Telemetry
from strategies import make_region, medium_regions

#: One wavefront keeps the scalar reference backend fast enough for
#: hypothesis; the engines' equivalence is geometry-independent (the
#: per-ant streams are spawn-indexed) and the seed sweep covers more ants.
GPU = GPUParams(blocks=1)

#: Both pheromone-update strategies must be backend-bit-identical: the
#: strategy only rewrites the tau trajectory, which every backend reads
#: identically (see repro.aco.strategy).
STRATEGIES = ("as", "mmas")

#: Golden regions pinned alongside the generated ones: the paper's running
#: example scale and the telemetry-golden region shapes.
GOLDEN_REGIONS = [
    ("reduce", 3, 30),
    ("sort", 5, 25),
    ("stencil", 1, 40),
]


def _run(backend, ddg, seed, telemetry=None, strategy="as"):
    scheduler = ParallelACOScheduler(
        amd_vega20(), gpu_params=GPU, backend=backend, telemetry=telemetry,
        strategy=strategy,
    )
    return scheduler.schedule(ddg, seed=seed)


def _fingerprint(result):
    """Everything two equivalent backends must agree on, bit for bit."""
    return (
        tuple(result.schedule.order),
        tuple(result.schedule.cycles),
        result.schedule.length,
        result.rp_cost_value,
        tuple(sorted((cls.name, v) for cls, v in result.peak.items())),
        result.pass1.invoked,
        result.pass1.iterations,
        result.pass1.trace,
        result.pass2.invoked,
        result.pass2.iterations,
        result.pass2.trace,
    )


def _event_counts(backend, ddg, seed, strategy="as"):
    sink = MemorySink()
    _run(backend, ddg, seed, telemetry=Telemetry(sink=sink), strategy=strategy)
    return Counter(r["event"] for r in sink.records)


def _explain_divergence(a, b, ddg, seed, strategy="as"):
    """Re-run both backends recorded at full draw level and localize.

    Returns the differ's human-readable first-divergence report; also
    writes the JSON report into ``REPRO_DIVERGENCE_DIR`` when set (CI
    uploads that directory as the failure artifact).
    """
    import os
    import tempfile

    from repro.obs.diff import diff_bundles, render_report, write_report
    from repro.obs.record import RunRecorder, recording_scope

    out_dir = os.environ.get("REPRO_DIVERGENCE_DIR")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    else:
        out_dir = tempfile.mkdtemp(prefix="repro-divergence-")
    paths = []
    for backend in (a, b):
        recorder = RunRecorder(draws="full")
        with recording_scope(recorder):
            _run(
                backend, ddg, seed,
                telemetry=Telemetry(sink=recorder.sink), strategy=strategy,
            )
        paths.append(
            recorder.save(
                os.path.join(out_dir, "%s-vs-%s-%s" % (a, b, backend))
            )
        )
    report = diff_bundles(paths[0], paths[1])
    write_report(
        report, os.path.join(out_dir, "first-divergence-%s-vs-%s.json" % (a, b))
    )
    return render_report(report)


def _assert_bit_identical(a, b, ddg, seed, strategy="as"):
    """Fingerprint equality with first-divergence localization on failure."""
    fp_a = _fingerprint(_run(a, ddg, seed, strategy=strategy))
    fp_b = _fingerprint(_run(b, ddg, seed, strategy=strategy))
    if fp_a == fp_b:
        return
    pytest.fail(
        "backends %r and %r diverged (seed %d, strategy %s):\n%s"
        % (a, b, seed, strategy, _explain_divergence(a, b, ddg, seed, strategy))
    )


# Module-level rather than a TestBackendPairs method: hypothesis treats
# each class instance as a separate executor, and the backend_pair
# parametrization would trip HealthCheck.differing_executors.
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@pytest.mark.parametrize("strategy", STRATEGIES)
@given(region=medium_regions())
def test_hypothesis_regions_bit_identical(backend_pair, strategy, region):
    a, b = backend_pair
    ddg = DDG(region)
    _assert_bit_identical(a, b, ddg, seed=7, strategy=strategy)


class TestBackendPairs:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("spec", GOLDEN_REGIONS, ids=lambda s: "%s-%d" % (s[0], s[2]))
    def test_golden_regions_bit_identical(self, backend_pair, spec, strategy):
        a, b = backend_pair
        ddg = DDG(make_region(*spec))
        _assert_bit_identical(a, b, ddg, seed=11, strategy=strategy)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("spec", GOLDEN_REGIONS[:1], ids=lambda s: s[0])
    def test_telemetry_event_counts_match(self, backend_pair, spec, strategy):
        a, b = backend_pair
        ddg = DDG(make_region(*spec))
        counts_a = _event_counts(a, ddg, seed=11, strategy=strategy)
        counts_b = _event_counts(b, ddg, seed=11, strategy=strategy)
        assert counts_a == counts_b

    def test_strategy_label_travels_with_pass_starts(self, backend_pair):
        ddg = DDG(make_region("reduce", 3, 30))
        for backend in backend_pair:
            for strategy in STRATEGIES:
                sink = MemorySink()
                _run(
                    backend, ddg, seed=11,
                    telemetry=Telemetry(sink=sink), strategy=strategy,
                )
                starts = sink.by_type("pass_start")
                assert starts
                assert {r["strategy"] for r in starts} == {strategy}

    def test_backend_label_travels_with_kernel_launches(self, backend_pair):
        ddg = DDG(make_region("reduce", 3, 30))
        for backend in backend_pair:
            sink = MemorySink()
            _run(backend, ddg, seed=11, telemetry=Telemetry(sink=sink))
            launches = sink.by_type("kernel_launch")
            assert launches
            assert {r["backend"] for r in launches} == {backend}


class TestCostModelsDiffer:
    """Identical decisions, different simulated kernels: the loop backend's
    serialized-lane accounting must charge strictly more kernel time."""

    def test_loop_kernel_seconds_exceed_vectorized(self):
        ddg = DDG(make_region("sort", 5, 25))
        vec = _run("vectorized", ddg, seed=11)
        loop = _run("loop", ddg, seed=11)
        assert _fingerprint(vec) == _fingerprint(loop)
        vec_kernel = vec.pass1.kernel_seconds + vec.pass2.kernel_seconds
        loop_kernel = loop.pass1.kernel_seconds + loop.pass2.kernel_seconds
        assert loop_kernel > vec_kernel


class TestSequentialLeg:
    """The third implementation: held to semantic invariants, not bits."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(region=medium_regions())
    def test_all_three_produce_valid_schedules(self, region):
        ddg = DDG(region)
        machine = amd_vega20()
        seq = SequentialACOScheduler(machine).schedule(ddg, seed=7)
        results = [seq, _run("loop", ddg, seed=7), _run("vectorized", ddg, seed=7)]
        for result in results:
            validate_schedule(result.schedule, ddg)
            assert sorted(result.schedule.order) == list(range(len(region)))
            assert result.peak == peak_pressure(result.schedule)

    def test_sequential_is_seed_deterministic(self):
        ddg = DDG(make_region("reduce", 3, 30))
        machine = amd_vega20()
        first = SequentialACOScheduler(machine).schedule(ddg, seed=7)
        second = SequentialACOScheduler(machine).schedule(ddg, seed=7)
        assert tuple(first.schedule.order) == tuple(second.schedule.order)
        assert tuple(first.schedule.cycles) == tuple(second.schedule.cycles)
