"""Hand-checked numeric tests of the experiment-harness arithmetic.

The smoke tests in test_experiments.py prove the harness *runs*; these
prove the aggregations it reports are the right formulas, using tiny
hand-constructed inputs where the expected numbers can be verified by eye.
"""

import pytest

from repro.config import geometric_mean
from repro.experiments.common import SpeedupRecord
from repro.pipeline.stats import improvement_statistics, suite_statistics


class TestSpeedupRecord:
    def test_speedup_is_ratio(self):
        record = SpeedupRecord("r", 30, 1, seq_seconds=6e-4, par_seconds=2e-4, iterations=2)
        assert record.speedup == pytest.approx(3.0)

    def test_size_class_buckets(self):
        assert SpeedupRecord("r", 30, 1, 1, 1, 1).size_class == 0
        assert SpeedupRecord("r", 50, 1, 1, 1, 1).size_class == 1
        assert SpeedupRecord("r", 100, 1, 1, 1, 1).size_class == 2

    def test_geomean_of_known_values(self):
        speedups = [
            SpeedupRecord("a", 10, 1, 2.0, 1.0, 1).speedup,  # 2
            SpeedupRecord("b", 10, 1, 8.0, 1.0, 1).speedup,  # 8
        ]
        assert geometric_mean(speedups) == pytest.approx(4.0)


class _Quality:
    def __init__(self, occupancy, length, rp_cost=0):
        self.occupancy = occupancy
        self.length = length
        self.rp_cost = rp_cost


class _Outcome:
    def __init__(self, heuristic, final, size=10, pass1=False, pass2=False):
        self.heuristic = heuristic
        self.final = final
        self.size = size
        self.pass1_processed = pass1
        self.pass2_processed = pass2
        self.region_name = "r"


class _Kernel:
    def __init__(self, outcomes):
        self.regions = outcomes

    @property
    def heuristic_occupancy(self):
        return min(o.heuristic.occupancy for o in self.regions)

    @property
    def final_occupancy(self):
        return min(o.final.occupancy for o in self.regions)


class _Run:
    def __init__(self, kernels):
        self.kernels = kernels

    def all_regions(self):
        for kernel in self.kernels:
            for outcome in kernel.regions:
                yield kernel, outcome


class TestImprovementStatistics:
    def test_occupancy_sum_formula(self):
        # Kernel A: 8 -> 10 occupancy; kernel B unchanged at 10.
        run = _Run([
            _Kernel([_Outcome(_Quality(8, 100), _Quality(10, 100))]),
            _Kernel([_Outcome(_Quality(10, 50), _Quality(10, 50))]),
        ])
        stats = improvement_statistics(run)
        # (20 - 18) / 18 = 11.11%; max gain on a kernel = 25%.
        assert stats.overall_occupancy_increase_pct == pytest.approx(100 * 2 / 18)
        assert stats.max_occupancy_increase_pct == pytest.approx(25.0)

    def test_length_reduction_formula(self):
        run = _Run([
            _Kernel([
                _Outcome(_Quality(10, 100), _Quality(10, 80)),   # -20%
                _Outcome(_Quality(10, 100), _Quality(10, 100)),  # unchanged
            ]),
        ])
        stats = improvement_statistics(run)
        assert stats.overall_length_reduction_pct == pytest.approx(10.0)  # 200->180
        assert stats.max_length_reduction_pct == pytest.approx(20.0)

    def test_pass_counts(self):
        run = _Run([
            _Kernel([
                _Outcome(_Quality(10, 10), _Quality(10, 10), pass1=True, pass2=True),
                _Outcome(_Quality(10, 10), _Quality(10, 10), pass2=True),
            ]),
        ])
        stats = improvement_statistics(run)
        assert stats.pass1_regions == 1
        assert stats.pass2_regions == 2


class TestSuiteStatistics:
    def test_processed_sizes(self):
        run = _Run([
            _Kernel([
                _Outcome(_Quality(10, 1), _Quality(10, 1), size=40, pass1=True, pass2=True),
                _Outcome(_Quality(10, 1), _Quality(10, 1), size=80, pass2=True),
                _Outcome(_Quality(10, 1), _Quality(10, 1), size=10),
            ]),
        ])
        stats = suite_statistics(run, num_benchmarks=5)
        assert stats.num_regions == 3
        assert stats.pass1_regions == 1
        assert stats.pass2_regions == 2
        assert stats.avg_pass1_size == pytest.approx(40.0)
        assert stats.avg_pass2_size == pytest.approx(60.0)
        assert stats.max_pass2_size == 80

    def test_empty_pass_sets(self):
        run = _Run([
            _Kernel([_Outcome(_Quality(10, 1), _Quality(10, 1))]),
        ])
        stats = suite_statistics(run, num_benchmarks=1)
        assert stats.avg_pass1_size == 0.0
        assert stats.max_pass1_size == 0
