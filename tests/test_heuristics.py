"""Tests for the guiding heuristics and the greedy schedulers."""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG, region_bounds
from repro.errors import ScheduleError
from repro.heuristics import (
    AMDMaxOccupancyScheduler,
    CriticalPathHeuristic,
    LastUseCountHeuristic,
    SchedulingState,
    list_schedule,
    order_schedule,
)
from repro.heuristics.base import builtin_heuristics
from repro.heuristics.cp_scheduler import CriticalPathListScheduler
from repro.ir.builder import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.rp import PressureTracker, peak_pressure
from repro.schedule import validate_schedule

from strategies import ddgs


class TestCriticalPathHeuristic:
    def test_prefers_tall_chains(self, fig1_ddg):
        prepared = CriticalPathHeuristic().prepare(fig1_ddg)
        state = SchedulingState(fig1_ddg, PressureTracker(fig1_ddg.region))
        by_label = {i.label: i.index for i in fig1_ddg.region}
        assert prepared.score(by_label["C"], state) > prepared.score(by_label["B"], state)

    def test_eta_positive(self, fig1_ddg):
        prepared = CriticalPathHeuristic().prepare(fig1_ddg)
        state = SchedulingState(fig1_ddg, PressureTracker(fig1_ddg.region))
        for i in range(fig1_ddg.num_instructions):
            assert prepared.eta(i, state) > 0


class TestLastUseCountHeuristic:
    def test_prefers_closers(self, fig1_ddg):
        prepared = LastUseCountHeuristic().prepare(fig1_ddg)
        region = fig1_ddg.region
        tracker = PressureTracker(region)
        by_label = {i.label: i.index for i in region}
        tracker.schedule(region[by_label["C"]])
        tracker.schedule(region[by_label["D"]])
        state = SchedulingState(fig1_ddg, tracker)
        # F closes two ranges; A opens one: F must win.
        assert prepared.score(by_label["F"], state) > prepared.score(by_label["A"], state)

    def test_order_reaches_figure1_optimum(self, fig1_ddg):
        schedule = order_schedule(fig1_ddg, heuristic=LastUseCountHeuristic())
        assert peak_pressure(schedule)[VGPR] == 3  # the paper's best PRP

    def test_builtin_heuristics_listed(self):
        names = [h.name for h in builtin_heuristics()]
        assert "critical-path" in names
        assert "last-use-count" in names


class TestListScheduler:
    def test_requires_some_priority(self, fig1_ddg, vega):
        with pytest.raises(ScheduleError):
            list_schedule(fig1_ddg, vega)
        with pytest.raises(ScheduleError):
            order_schedule(fig1_ddg)

    def test_cp_schedule_length(self, fig1_ddg, vega):
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        validate_schedule(schedule, fig1_ddg, vega)
        assert schedule.length == 8  # C D A B _ E F G

    def test_chain_stalls(self, chain_region, vega):
        schedule = list_schedule(DDG(chain_region), vega, heuristic=CriticalPathHeuristic())
        assert schedule.length == 7  # three latency-2 hops fully exposed
        assert schedule.num_stalls == 3

    def test_deterministic(self, fig1_ddg, vega):
        a = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        b = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        assert a == b

    @given(ddgs())
    @settings(max_examples=40, deadline=None)
    def test_always_legal(self, ddg):
        vega = amd_vega20()
        for heuristic in (CriticalPathHeuristic(), LastUseCountHeuristic()):
            schedule = list_schedule(ddg, vega, heuristic=heuristic)
            validate_schedule(schedule, ddg, vega)

    @given(ddgs())
    @settings(max_examples=40, deadline=None)
    def test_order_schedule_is_permutation(self, ddg):
        schedule = order_schedule(ddg, heuristic=CriticalPathHeuristic())
        assert sorted(schedule.order) == list(range(ddg.num_instructions))
        validate_schedule(schedule, ddg, respect_latencies=False)

    @given(ddgs())
    @settings(max_examples=25, deadline=None)
    def test_length_at_least_lower_bound(self, ddg):
        vega = amd_vega20()
        bounds = region_bounds(ddg)
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        assert schedule.length >= bounds.length


class TestAMDMaxOccupancy:
    def test_schedules_are_legal(self, fig1_ddg, vega):
        amd = AMDMaxOccupancyScheduler(vega)
        validate_schedule(amd.schedule(fig1_ddg), fig1_ddg, vega)
        validate_schedule(
            amd.order_only(fig1_ddg), fig1_ddg, vega, respect_latencies=False
        )

    def test_pressure_mode_reduces_peak(self, tiny_machine, fig1_ddg):
        """On the tiny target (boundary at 3 VGPRs) the pressure mode must
        keep the order-only peak below the CP heuristic's."""
        amd = AMDMaxOccupancyScheduler(tiny_machine)
        amd_peak = peak_pressure(amd.order_only(fig1_ddg))[VGPR]
        cp_peak = peak_pressure(
            order_schedule(fig1_ddg, heuristic=CriticalPathHeuristic())
        )[VGPR]
        assert amd_peak <= cp_peak
        assert amd_peak == 3

    def test_ilp_mode_blends_source_order(self, vega):
        """With a huge pressure budget the policy follows source order when
        heights tie."""
        b = RegionBuilder("tie")
        for i in range(4):
            b.inst("op1", defs=["v%d" % i])
        ddg = DDG(b.build())
        amd = AMDMaxOccupancyScheduler(vega)
        assert amd.order_only(ddg).order == (0, 1, 2, 3)

    def test_rp_cost_of(self, vega, fig1_ddg):
        amd = AMDMaxOccupancyScheduler(vega)
        schedule = amd.schedule(fig1_ddg)
        assert amd.rp_cost_of(schedule) >= 0

    @given(ddgs())
    @settings(max_examples=30, deadline=None)
    def test_always_legal_property(self, ddg):
        amd = AMDMaxOccupancyScheduler(simple_test_target())
        validate_schedule(amd.schedule(ddg), ddg, simple_test_target())


class TestCriticalPathListScheduler:
    def test_interface(self, fig1_ddg, vega):
        cp = CriticalPathListScheduler(vega)
        validate_schedule(cp.schedule(fig1_ddg), fig1_ddg, vega)
        validate_schedule(
            cp.order_only(fig1_ddg), fig1_ddg, vega, respect_latencies=False
        )
        assert cp.name == "critical-path"
