"""Seed-sweep stress test: 50 seeds, both backends, one medium region.

Marked ``slow`` (the default pytest invocation skips it; the nightly CI
job runs ``-m slow``). For every seed the two construction backends must
produce bit-identical schedules, and no backend may ship a pass-2
schedule that violates the APRP pressure target derived from its pass-1
winner. The vectorized leg runs under the independent verifier
(``verify=True``), which raises on any APRP/dependence violation; the
per-seed bit-identity assertion transfers that guarantee to the loop leg,
and a direct spot check runs the loop leg itself under the verifier.
"""

from __future__ import annotations

import pytest

from repro.config import GPUParams
from repro.ddg import DDG
from repro.machine import amd_vega20
from repro.parallel import ParallelACOScheduler
from strategies import make_region

pytestmark = pytest.mark.slow

NUM_SEEDS = 50
GPU = GPUParams(blocks=1)


@pytest.fixture(scope="module")
def medium_ddg():
    """A medium region (~40 instructions): both passes run, stalls happen."""
    return DDG(make_region("reduce", 3, 40))


def _run(backend, ddg, seed, verify=False):
    scheduler = ParallelACOScheduler(
        amd_vega20(), gpu_params=GPU, backend=backend, verify=verify
    )
    return scheduler.schedule(ddg, seed=seed)


def _fingerprint(result):
    return (
        tuple(result.schedule.order),
        tuple(result.schedule.cycles),
        result.rp_cost_value,
        tuple(sorted((cls.name, v) for cls, v in result.peak.items())),
        result.pass1.trace,
        result.pass2.trace,
    )


def test_sweep_backends_bit_identical_and_aprp_clean(medium_ddg):
    for seed in range(NUM_SEEDS):
        # verify=True independently rechecks the shipped schedule,
        # including the pass-2 APRP target — a violation raises.
        vec = _run("vectorized", medium_ddg, seed, verify=True)
        loop = _run("loop", medium_ddg, seed)
        assert _fingerprint(vec) == _fingerprint(loop), "seed %d diverged" % seed


def test_loop_backend_survives_the_verifier(medium_ddg):
    # Direct spot check: the scalar engine under the verifier + sanitizer
    # (checked SoA accessors), not just by transitivity.
    for seed in (0, 17, 49):
        _run("loop", medium_ddg, seed, verify=True)


def test_sweep_is_deterministic_per_seed(medium_ddg):
    for seed in (0, 25, 49):
        for backend in ("vectorized", "loop"):
            first = _fingerprint(_run(backend, medium_ddg, seed))
            second = _fingerprint(_run(backend, medium_ddg, seed))
            assert first == second, "%s seed %d not deterministic" % (backend, seed)
