"""Tests for the structured telemetry layer.

Covers the metrics registry, the sinks, the event schema and JSONL
round-trip, the pass scopes, the report renderers — and the layer's core
guarantee: with telemetry enabled, seeded results are bit-identical to the
disabled default (which in turn matches the values recorded from the seed
commit, embedded below as goldens).
"""

from __future__ import annotations

import math
import os

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import GPUParams
from repro.ddg import DDG
from repro.errors import TelemetryError
from repro.machine import simple_test_target
from repro.parallel import ParallelACOScheduler
from repro.telemetry import (
    ITERATION_BUCKETS,
    JSONLSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TeeSink,
    Telemetry,
    get_telemetry,
    read_trace,
    set_telemetry,
    telemetry_session,
    validate_event,
    validate_trace,
)
from repro.telemetry.report import render_metrics, summarize_trace

from conftest import make_region

FIXTURE = os.path.join(os.path.dirname(__file__), "data", "convergence_trace.jsonl")


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("a")
        c.inc()
        c.inc(2.5)
        assert registry.counter("a").value == 3.5
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_gauge_extremes(self):
        g = MetricsRegistry().gauge("g")
        for v in (5, 1, 3):
            g.set(v)
        assert (g.value, g.min, g.max) == (3, 1, 5)

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram("h", (1, 2, 4))
        for v in (0.5, 1, 2, 3, 100):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 100

    def test_histogram_nonfinite_goes_to_overflow(self):
        h = MetricsRegistry().histogram("h", (1, 2))
        h.observe(float("inf"))
        h.observe(1)
        assert h.counts == [1, 0, 1]
        assert h.mean == 1  # non-finite observations excluded from the mean

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(TelemetryError):
            registry.histogram("h", (1, 3))

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", (1,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 2}
        assert snap["g"]["value"] == 7
        assert snap["h"]["counts"] == [1, 0]


class TestSinksAndSchema:
    def test_null_sink_disables_everything(self):
        tele = Telemetry()
        assert not tele.tracing and not tele.active
        tele.emit("iteration", region="r", pass_index=1, iteration=0,
                  winner_cost=1.0, best_cost=1.0)  # silently dropped

    def test_memory_sink_records_and_validates(self):
        sink = MemorySink()
        tele = Telemetry(sink=sink)
        assert tele.tracing and tele.active and tele.collect_metrics
        tele.emit("region_start", region="r", size=3, scheduler="s")
        tele.emit("region_start", region="q", size=4, scheduler="s")
        assert [r["seq"] for r in sink.records] == [0, 1]
        assert len(sink.by_type("region_start")) == 2
        for record in sink.records:
            validate_event(record)

    def test_emit_rejects_unknown_event_and_missing_fields(self):
        tele = Telemetry(sink=MemorySink())
        with pytest.raises(TelemetryError):
            tele.emit("no_such_event")
        with pytest.raises(TelemetryError):
            tele.emit("region_start", region="r")  # size, scheduler missing

    def test_jsonl_round_trips_through_validator(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JSONLSink(path)
        tele = Telemetry(sink=sink)
        scope = tele.pass_scope("r", 1, "seq", 10.0, 20.0)
        scope.iteration(15.0, 15.0)
        scope.iteration(float("inf"), 15.0)  # dead iteration -> null in JSON
        scope.end(invoked=True, iterations=2, final_cost=15.0,
                  hit_lower_bound=False, seconds=1e-5)
        tele.close()
        assert validate_trace(path) == 4
        records = read_trace(path)
        assert [r["event"] for r in records][-4:] == [
            "pass_start", "iteration", "iteration", "pass_end",
        ]
        assert records[-2]["winner_cost"] is None  # strict JSON, no Infinity

    def test_jsonl_lazy_open(self, tmp_path):
        path = str(tmp_path / "never.jsonl")
        sink = JSONLSink(path)
        sink.close()
        assert not os.path.exists(path)
        assert sink.records_written == 0

    def test_tee_sink(self, tmp_path):
        memory = MemorySink()
        sink = TeeSink(memory, NullSink())
        assert sink.enabled
        Telemetry(sink=sink).emit("region_start", region="r", size=1, scheduler="s")
        assert len(memory.records) == 1

    def test_validate_trace_flags_corrupt_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"v": 1, "seq": 0, "event": "nope"}\n')
        with pytest.raises(TelemetryError):
            validate_trace(path)

    def test_kernel_launch_carries_attribution_fields(self):
        """Satellite of the profiler work: every simulated launch reports
        its full charge_totals() split, attributed seconds, batch count and
        coalescing mode — as *optional* extras, so the record stays valid
        under the unchanged schema-v1 required-field lists."""
        sink = MemorySink()
        _schedule_both(Telemetry(sink=sink))
        launches = sink.by_type("kernel_launch")
        assert launches
        for rec in launches:
            validate_event(rec)
            assert rec["batches"] >= 1
            assert isinstance(rec["coalesced"], bool)
            assert rec["coalescing_factor"] >= 1.0
            split = sum(
                rec[k]
                for k in (
                    "compute_seconds",
                    "memory_seconds",
                    "alloc_seconds",
                    "uniform_seconds",
                )
            )
            assert split == pytest.approx(rec["kernel_seconds"])

    def test_fixture_trace_is_schema_valid(self):
        assert validate_trace(FIXTURE) > 0
        records = read_trace(FIXTURE)
        types = {r["event"] for r in records}
        assert {"pass_start", "iteration", "pass_end", "kernel_launch"} <= types


class TestSessionAndScope:
    def test_session_installs_and_restores(self):
        default = get_telemetry()
        tele = Telemetry(sink=MemorySink())
        with telemetry_session(tele) as installed:
            assert installed is tele
            assert get_telemetry() is tele
        assert get_telemetry() is default

    def test_set_telemetry_none_restores_inert_default(self):
        previous = set_telemetry(Telemetry(sink=MemorySink()))
        set_telemetry(None)
        assert not get_telemetry().active
        set_telemetry(previous)

    def test_pass_scope_trace_derivation(self):
        tele = Telemetry()  # disabled sink: scope still records locally
        scope = tele.pass_scope("r", 2, "seq", 1.0, 5.0)
        scope.iteration(4.0, 4.0)
        scope.iteration(None, 4.0)
        scope.iteration(float("inf"), 4.0)
        assert scope.trace == (4.0, float("inf"), float("inf"))

    def test_pass_scope_end_updates_metrics(self):
        tele = Telemetry(collect_metrics=True)
        scope = tele.pass_scope("r", 1, "seq", 1.0, 5.0)
        scope.iteration(None, 5.0)
        scope.iteration(3.0, 3.0)
        scope.end(invoked=True, iterations=2, final_cost=3.0,
                  hit_lower_bound=True, seconds=2e-6)
        m = tele.metrics
        assert m.counter("aco.pass1.regions").value == 1
        assert m.counter("aco.pass1.hit_lower_bound").value == 1
        assert m.counter("aco.pass1.dead_iterations").value == 1
        assert m.histogram("aco.pass1.iterations", ITERATION_BUCKETS).count == 1


class TestReport:
    def test_summarize_fixture(self):
        text = summarize_trace(FIXTURE)
        assert "trace summary" in text
        assert "GPU time split" in text
        assert "iterations-to-convergence" in text

    def test_summarize_accepts_record_list(self):
        text = summarize_trace(read_trace(FIXTURE))
        assert "trace summary" in text

    def test_render_metrics(self):
        registry = MetricsRegistry()
        assert render_metrics(registry) == "(no metrics collected)\n"
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1, 2)).observe(1)
        text = render_metrics(registry)
        assert "counter" in text and "gauge" in text and "histogram" in text

    def test_summarize_empty_file_is_friendly(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = summarize_trace(str(path))
        assert "no valid records" in text

    def test_summarize_truncated_trace_counts_skipped(self, tmp_path):
        good = open(FIXTURE).readline()
        path = tmp_path / "trunc.jsonl"
        # One valid record, one mid-write truncation, one alien line.
        path.write_text(good + good[: len(good) // 2] + "\nnot json at all\n")
        text = summarize_trace(str(path))
        assert "trace summary: 1 record(s)" in text
        assert "skipped 2 invalid or truncated line(s)" in text

    def test_summarize_record_list_skips_invalid(self):
        records = read_trace(FIXTURE)
        text = summarize_trace(records + [{"event": "bogus"}, {}])
        assert "skipped 2 invalid or truncated line(s)" in text

    def test_read_trace_lenient(self, tmp_path):
        from repro.telemetry.schema import read_trace_lenient

        good = open(FIXTURE).readline()
        path = tmp_path / "t.jsonl"
        path.write_text(good + "{broken\n" + good)
        records, skipped = read_trace_lenient(str(path))
        assert len(records) == 2
        assert skipped == 1


def _schedule_both(telemetry):
    """The two golden scenarios, run under ``telemetry`` (None = default)."""
    machine = simple_test_target()
    seq = SequentialACOScheduler(machine, telemetry=telemetry).schedule(
        DDG(make_region("reduce", 3, 30)), seed=7
    )
    par = ParallelACOScheduler(
        machine, gpu_params=GPUParams(blocks=2), telemetry=telemetry
    ).schedule(DDG(make_region("sort", 5, 25)), seed=11)
    return seq, par


def _fingerprint(result):
    passes = []
    for p in (result.pass1, result.pass2):
        passes.append(
            (p.invoked, p.iterations, p.initial_cost, p.final_cost, p.seconds, p.trace)
        )
    return (
        tuple(result.schedule.order),
        tuple(result.schedule.cycles),
        result.schedule.length,
        result.seconds,
        tuple(passes),
    )


class TestDeterminism:
    """Telemetry observes; it must never steer.

    The golden values below were recorded from the seed commit (before the
    telemetry layer existed). Telemetry off must reproduce them exactly,
    and telemetry on must match telemetry off bit for bit.
    """

    SEQ_ORDER = (1, 2, 7, 8, 10, 17, 5, 19, 14, 9, 11, 16, 21, 23, 0, 20,
                 3, 4, 15, 6, 18, 22, 24, 25, 12, 26, 13, 27, 28, 29)
    SEQ_CYCLES = (80, 0, 1, 101, 102, 29, 123, 2, 3, 55, 4, 56, 147, 168,
                  54, 122, 76, 28, 143, 53, 100, 77, 144, 79, 145, 146,
                  167, 188, 190, 191)
    PAR_ORDER = (0, 2, 4, 5, 7, 6, 3, 8, 9, 15, 14, 1, 10, 11, 12, 13, 16,
                 17, 18, 19, 21, 20, 22, 23, 24)
    PAR_CYCLES = (0, 53, 1, 29, 2, 3, 28, 27, 49, 50, 73, 74, 75, 76, 52,
                  51, 77, 78, 79, 80, 82, 81, 83, 84, 85)

    def test_disabled_matches_seed_goldens(self):
        seq, par = _schedule_both(None)

        assert tuple(seq.schedule.order) == self.SEQ_ORDER
        assert tuple(seq.schedule.cycles) == self.SEQ_CYCLES
        assert seq.schedule.length == 192
        assert seq.pass1.trace == (30014.0,)
        assert seq.pass1.seconds == 0.000111496
        assert seq.pass2.trace == (float("inf"),)
        assert seq.pass2.seconds == 7.903599999999998e-05
        assert seq.seconds == 0.00019053199999999998

        assert tuple(par.schedule.order) == self.PAR_ORDER
        assert tuple(par.schedule.cycles) == self.PAR_CYCLES
        assert par.schedule.length == 86
        assert par.pass1.trace == (20012.0,)
        # The kernel-seconds goldens below were re-recorded when the colony
        # moved to spawn-indexed per-ant RNG streams (the schedule goldens
        # above survived the change; per-step wave-max charges did not).
        assert par.pass1.seconds == 5.958740277777778e-05
        assert par.pass1.kernel_seconds == 3.3327777777777777e-06
        assert par.pass1.transfer_seconds == 1.6254625e-05
        assert par.pass1.launch_seconds == 4e-05
        assert par.pass2.trace == (float("inf"),)
        assert par.pass2.kernel_seconds == 2.283888888888889e-06
        assert par.seconds == 0.00011812591666666668

    def test_enabled_is_bit_identical_to_disabled(self, tmp_path):
        base_seq, base_par = _schedule_both(None)
        sink = TeeSink(MemorySink(), JSONLSink(str(tmp_path / "t.jsonl")))
        tele = Telemetry(sink=sink, collect_metrics=True)
        traced_seq, traced_par = _schedule_both(tele)
        tele.close()

        assert _fingerprint(traced_seq) == _fingerprint(base_seq)
        assert _fingerprint(traced_par) == _fingerprint(base_par)
        # ... and the trace it wrote is schema-valid and non-trivial.
        records = read_trace(str(tmp_path / "t.jsonl"))
        assert {r["event"] for r in records} >= {
            "pass_start", "iteration", "pass_end", "kernel_launch", "transfer",
        }

    def test_global_session_is_bit_identical_too(self):
        base = [_fingerprint(r) for r in _schedule_both(None)]
        with telemetry_session(Telemetry(sink=MemorySink())):
            traced = [_fingerprint(r) for r in _schedule_both(None)]
        assert traced == base
