"""Tests for repro.ir.instructions."""

import pytest

from repro.errors import IRError
from repro.ir.instructions import (
    OPCODES,
    Instruction,
    Opcode,
    define_opcode,
    opcode,
    registers_of,
)
from repro.ir.registers import sreg, vreg


class TestOpcode:
    def test_builtin_table_populated(self):
        assert "v_add" in OPCODES
        assert "global_load" in OPCODES

    def test_lookup(self):
        assert opcode("v_add").latency == 1
        assert opcode("global_load").kind == "mem"

    def test_unknown_raises(self):
        with pytest.raises(IRError):
            opcode("no_such_op")

    def test_memory_latencies_exceed_alu(self):
        assert opcode("global_load").latency > opcode("v_add").latency
        assert opcode("flat_load").latency >= opcode("buffer_load").latency

    def test_define_idempotent(self):
        op = define_opcode("v_add", 1, "valu")
        assert op is OPCODES["v_add"]

    def test_redefinition_conflict_raises(self):
        with pytest.raises(IRError):
            define_opcode("v_add", 99, "valu")

    def test_negative_latency_rejected(self):
        with pytest.raises(IRError):
            Opcode("bad", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(IRError):
            Opcode("", 1)

    def test_custom_opcode(self):
        op = define_opcode("test_custom_xyz", 7, "other")
        assert opcode("test_custom_xyz").latency == 7


class TestInstruction:
    def test_basic(self):
        inst = Instruction(0, opcode("v_add"), defs=(vreg(1),), uses=(vreg(0),))
        assert inst.latency == 1
        assert inst.defines(vreg(1))
        assert inst.reads(vreg(0))
        assert not inst.defines(vreg(0))

    def test_latency_defaults_to_opcode(self):
        inst = Instruction(0, opcode("global_load"), defs=(vreg(0),))
        assert inst.latency == opcode("global_load").latency

    def test_latency_override(self):
        inst = Instruction(0, opcode("v_add"), latency=9)
        assert inst.latency == 9

    def test_label(self):
        assert Instruction(3, opcode("v_add")).label == "i3"
        assert Instruction(3, opcode("v_add"), name="X").label == "X"

    def test_negative_index_rejected(self):
        with pytest.raises(IRError):
            Instruction(-1, opcode("v_add"))

    def test_duplicate_defs_rejected(self):
        with pytest.raises(IRError):
            Instruction(0, opcode("v_add"), defs=(vreg(1), vreg(1)))

    def test_duplicate_uses_rejected(self):
        with pytest.raises(IRError):
            Instruction(0, opcode("v_add"), uses=(vreg(1), vreg(1)))

    def test_renumbered(self):
        inst = Instruction(0, opcode("v_add"), defs=(vreg(1),), name="A")
        moved = inst.renumbered(5)
        assert moved.index == 5
        assert moved.defs == inst.defs
        assert moved.name == "A"

    def test_str_contains_operands(self):
        inst = Instruction(0, opcode("v_add"), defs=(vreg(2),), uses=(vreg(0), vreg(1)))
        text = str(inst)
        assert "v_add" in text
        assert "defs(v2)" in text
        assert "uses(v0,v1)" in text

    def test_str_shows_nondefault_latency(self):
        inst = Instruction(0, opcode("v_add"), latency=5)
        assert "lat=5" in str(inst)
        assert "lat=" not in str(Instruction(0, opcode("v_add")))

    def test_registers_of(self):
        insts = [
            Instruction(0, opcode("v_add"), defs=(vreg(0),)),
            Instruction(1, opcode("v_add"), defs=(sreg(1),), uses=(vreg(0),)),
        ]
        assert registers_of(insts) == {vreg(0), sreg(1)}
