"""Tests for the experiment harness (report rendering, context, post-hoc
thresholding) and a smoke test of every experiment at test scale."""

import pytest

from repro.experiments import EXPERIMENTS, SCALES, ExperimentTable, get_context
from repro.experiments.common import (
    ExperimentContext,
    threshold_pick,
    thresholded_compile_seconds,
)


@pytest.fixture(scope="module")
def context():
    # A module-scoped fresh context at the smallest scale.
    return ExperimentContext(SCALES["test"])


class TestExperimentTable:
    def test_render_basic(self):
        table = ExperimentTable("Title", ("A", "B"))
        table.add_row("x", 1)
        table.add_row("longer", 2.5)
        text = table.render()
        assert "Title" in text
        assert "longer" in text
        assert "2.50" in text

    def test_row_arity_checked(self):
        table = ExperimentTable("T", ("A", "B"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_notes_rendered(self):
        table = ExperimentTable("T", ("A",))
        table.add_note("hello")
        assert "note: hello" in table.render()


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"test", "default", "large"}

    def test_default_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "test")
        context = get_context()
        assert context.scale.name == "test"

    def test_bad_env_scale(self, monkeypatch):
        from repro.experiments.common import scale_from_env

        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            scale_from_env()


class TestContext:
    def test_suite_cached(self, context):
        assert context.suite is context.suite

    def test_runs_cached(self, context):
        assert context.run("baseline") is context.run("baseline")

    def test_unknown_run_kind(self, context):
        with pytest.raises(ValueError):
            context.run("bogus")

    def test_speedup_records_comparable(self, context):
        records = context.speedup_records()
        assert records, "expected at least one comparable region at test scale"
        for record in records:
            assert record.speedup > 0
            assert record.pass_index in (1, 2)
            assert record.iterations >= 1

    def test_threshold_pick_monotone(self, context):
        """Raising the threshold can only move regions back to heuristic."""
        run = context.run("parallel")
        pick0, invoked0 = threshold_pick(context, 0)
        pick99, invoked99 = threshold_pick(context, 10**6)
        for _kernel, outcome in run.all_regions():
            if invoked99(outcome):
                assert invoked0(outcome)

    def test_thresholded_compile_seconds_monotone(self, context):
        run = context.run("parallel")
        low = thresholded_compile_seconds(context, run, 0)
        high = thresholded_compile_seconds(context, run, 10**6)
        assert high <= low
        assert high >= run.base_seconds


class TestAllExperimentsSmoke:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, context, name):
        result = EXPERIMENTS[name](context)
        tables = result if isinstance(result, list) else [result]
        for table in tables:
            text = table.render()
            assert text.strip()
            assert "scale=test" in text
