"""Fleet differential tests: sharded == single-device, bit for bit.

The tentpole acceptance surface: for any shard count and any
eventually-recovering worker fault plan, the fleet's merged
:class:`~repro.parallel.multi_region.BatchResult` must be bit-identical
to the single-device run — schedules, costs, errors, attempts, backends
and every simulated second. Plus the RNG-stream half of the contract: a
re-dispatched region replays the *same* per-ant draw streams, proven by
diffing recorded ``rng.jsonl`` entries of a crash-riddled fleet run
against the single-device recording.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FleetParams
from repro.fleet import FleetSupervisor
from repro.fleet.chaos import batches_identical, fleet_items, fleet_scheduler
from repro.gpusim.faults import DEFAULT_WORKER_CHAOS_RATES, FaultPlan
from repro.machine import amd_vega20
from repro.obs.diff import diff_bundles
from repro.obs.record import RunRecorder, recording_scope
from repro.telemetry import Telemetry

SIZES = (8, 10, 12, 9)


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(scope="module")
def items(machine):
    return fleet_items(machine, sizes=SIZES)


@pytest.fixture(scope="module")
def single(machine, items):
    return fleet_scheduler(machine).schedule_batch(items)


def _fleet(machine, items, num_shards, worker_faults=None):
    return FleetSupervisor(
        fleet_scheduler(machine),
        FleetParams(num_shards=num_shards),
        worker_faults=worker_faults,
    ).schedule_batch(items)


PLANS = {
    "fault-free": None,
    "crash": FaultPlan(seed=13, rates={"worker_crash": 1.0}),
    "hang": FaultPlan(seed=13, rates={"worker_hang": 1.0}),
}


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("plan", sorted(PLANS))
    def test_fleet_matches_single_device(
        self, machine, items, single, num_shards, plan
    ):
        fleet = _fleet(machine, items, num_shards, worker_faults=PLANS[plan])
        assert batches_identical(single, fleet.batch)

    def test_differential_surface_is_field_exact(self, machine, items, single):
        batch = _fleet(
            machine, items, 4, worker_faults=PLANS["crash"]
        ).batch
        assert batch.seconds == single.seconds
        assert batch.unbatched_seconds == single.unbatched_seconds
        assert batch.blocks_per_region == single.blocks_per_region
        assert batch.errors == single.errors
        assert batch.attempts == single.attempts
        assert batch.final_backends == single.final_backends
        for a, b in zip(single.results, batch.results):
            assert a.schedule == b.schedule
            assert a.rp_cost_value == b.rp_cost_value
            assert a.seconds == b.seconds

    @given(
        num_shards=st.integers(min_value=1, max_value=5),
        chaos_seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=6, deadline=None)
    def test_identity_holds_for_any_shards_and_chaos(
        self, machine, items, single, num_shards, chaos_seed
    ):
        plan = FaultPlan(seed=chaos_seed, rates=dict(DEFAULT_WORKER_CHAOS_RATES))
        fleet = _fleet(machine, items, num_shards, worker_faults=plan)
        assert batches_identical(single, fleet.batch)


def _rng_entries(path):
    """rng.jsonl entries keyed by (region, pass, iteration), trace ids
    dropped (trace identity is run-layout-specific, draws are not)."""
    entries = {}
    with open(os.path.join(path, "rng.jsonl")) as handle:
        for line in handle:
            entry = json.loads(line)
            key = (entry["region"], entry["pass"], entry["iteration"])
            assert key not in entries  # each iteration keys exactly once
            entries[key] = entry.get("ants")
    return entries


class TestRngStreams:
    def test_redispatch_preserves_per_region_draw_streams(
        self, tmp_path, machine, items
    ):
        """A crash fires before slot work, so every region's ACO still runs
        exactly once — with ant draw streams identical to the single-device
        run, whichever worker (or the host) ended up running it."""
        recordings = {}
        for name, runner in (
            ("single", lambda s: s.schedule_batch(items)),
            (
                "fleet",
                lambda s: FleetSupervisor(
                    s,
                    FleetParams(num_shards=2),
                    worker_faults=PLANS["crash"],
                ).schedule_batch(items),
            ),
        ):
            recorder = RunRecorder(draws="digest")
            scheduler = fleet_scheduler(machine)
            scheduler = type(scheduler)(
                machine,
                params=scheduler.params,
                gpu_params=scheduler.gpu_params,
                telemetry=Telemetry(sink=recorder.sink),
            )
            with recording_scope(recorder):
                runner(scheduler)
            recordings[name] = recorder.save(str(tmp_path / name))
        single_draws = _rng_entries(recordings["single"])
        fleet_draws = _rng_entries(recordings["fleet"])
        assert single_draws.keys() == fleet_draws.keys()
        assert single_draws == fleet_draws


class TestShardDiffLevel:
    """The ``shards`` granularity of repro.obs.diff: supervision history
    diverges (worker ids) while the merged schedules stay identical."""

    @staticmethod
    def _bundle(tmp_path, name, worker):
        recorder = RunRecorder(draws="off")
        recorder.record_schedule(
            "shipped", region="r0", seed=7, length=5, rp_cost=1.0
        )
        recorder.record_schedule(
            "shard",
            region="r0",
            seed=7,
            slot=0,
            worker=worker,
            dispatch=0,
            blocks=2,
            error=None,
        )
        return recorder.save(str(tmp_path / name))

    def test_divergence_localized_to_the_shard_entry(self, tmp_path):
        path_a = self._bundle(tmp_path, "a", worker=0)
        path_b = self._bundle(tmp_path, "b", worker=1)
        report = diff_bundles(path_a, path_b)
        assert not report["identical"]
        statuses = {lv["level"]: lv["status"] for lv in report["levels"]}
        assert statuses["schedules"] == "identical"
        assert statuses["shards"] == "divergent"
        fd = report["first_divergence"]
        assert fd["level"] == "shards"

    def test_identical_supervision_history_is_clean(self, tmp_path):
        path_a = self._bundle(tmp_path, "a", worker=0)
        path_b = self._bundle(tmp_path, "b", worker=0)
        assert diff_bundles(path_a, path_b)["identical"]
