"""Tests for repro.ir.registers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir.registers import (
    SGPR,
    VGPR,
    RegisterClass,
    VirtualRegister,
    register_class_by_prefix,
    sreg,
    vreg,
)


class TestRegisterClass:
    def test_builtin_classes(self):
        assert VGPR.name == "VGPR"
        assert VGPR.prefix == "v"
        assert SGPR.prefix == "s"

    def test_lookup_by_prefix(self):
        assert register_class_by_prefix("v") is VGPR
        assert register_class_by_prefix("s") is SGPR

    def test_unknown_prefix_raises(self):
        with pytest.raises(IRError):
            register_class_by_prefix("x")

    def test_bad_prefix_rejected(self):
        with pytest.raises(IRError):
            RegisterClass("weird", "ab")
        with pytest.raises(IRError):
            RegisterClass("weird", "1")

    def test_classes_are_ordered(self):
        assert sorted([VGPR, SGPR]) == [SGPR, VGPR]

    def test_str(self):
        assert str(VGPR) == "VGPR"


class TestVirtualRegister:
    def test_str_roundtrip(self):
        reg = VirtualRegister(VGPR, 12)
        assert str(reg) == "v12"
        assert VirtualRegister.parse("v12") == reg

    def test_parse_sgpr(self):
        assert VirtualRegister.parse("s3") == VirtualRegister(SGPR, 3)

    def test_parse_strips_whitespace(self):
        assert VirtualRegister.parse("  v7 ") == vreg(7)

    @pytest.mark.parametrize("text", ["", "v", "x3", "vv", "v-1", "3"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(IRError):
            VirtualRegister.parse(text)

    def test_negative_id_rejected(self):
        with pytest.raises(IRError):
            VirtualRegister(VGPR, -1)

    def test_equality_is_by_value(self):
        assert vreg(1) == vreg(1)
        assert vreg(1) != sreg(1)
        assert vreg(1) != vreg(2)

    def test_usable_in_sets(self):
        assert len({vreg(1), vreg(1), sreg(1)}) == 2

    def test_ordering_is_deterministic(self):
        regs = [vreg(2), sreg(9), vreg(0), sreg(1)]
        assert sorted(regs) == [sreg(1), sreg(9), vreg(0), vreg(2)]

    @given(st.integers(min_value=0, max_value=10**6))
    def test_roundtrip_property(self, ident):
        for make in (vreg, sreg):
            reg = make(ident)
            assert VirtualRegister.parse(str(reg)) == reg

    def test_helpers(self):
        assert vreg(4).reg_class is VGPR
        assert sreg(4).reg_class is SGPR
