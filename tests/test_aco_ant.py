"""Tests for single-ant construction (both passes)."""

import random

import pytest
from hypothesis import given, settings

from repro.aco import PheromoneTable, construct_cycles, construct_order
from repro.aco.stalls import OptionalStallHeuristic
from repro.config import ACOParams
from repro.ddg import DDG
from repro.heuristics import CriticalPathHeuristic, LastUseCountHeuristic
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.rp import peak_pressure
from repro.schedule import Schedule, validate_schedule

from conftest import ddgs


def _setup(ddg, heuristic=None, params=None):
    params = params or ACOParams()
    pheromone = PheromoneTable(ddg.num_instructions, params)
    prepared = (heuristic or LastUseCountHeuristic()).prepare(ddg)
    return params, pheromone, prepared


class TestConstructOrder:
    def test_produces_valid_permutation(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_order(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(1)
        )
        assert sorted(result.order) == list(range(7))
        assert result.alive
        schedule = Schedule.from_order(fig1_ddg.region, result.order)
        validate_schedule(schedule, fig1_ddg, respect_latencies=False)

    def test_reported_peak_matches_liveness(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_order(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(7)
        )
        schedule = Schedule.from_order(fig1_ddg.region, result.order)
        assert result.peak == peak_pressure(schedule)

    def test_stats_counted(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_order(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(1)
        )
        assert result.stats.steps == 7
        assert result.stats.ready_scans >= 7
        assert result.stats.successor_ops == 6  # one per merged edge

    def test_deterministic_given_seed(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        a = construct_order(fig1_ddg, vega, pheromone, prepared, params, random.Random(3))
        b = construct_order(fig1_ddg, vega, pheromone, prepared, params, random.Random(3))
        assert a.order == b.order

    def test_exploit_decider_hoistable(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_order(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(1),
            exploit_decider=lambda step: True,
        )
        assert result.alive

    @given(ddgs())
    @settings(max_examples=30, deadline=None)
    def test_always_valid_property(self, ddg):
        vega = amd_vega20()
        params, pheromone, prepared = _setup(ddg)
        result = construct_order(ddg, vega, pheromone, prepared, params, random.Random(5))
        schedule = Schedule.from_order(ddg.region, result.order)
        validate_schedule(schedule, ddg, respect_latencies=False)
        assert result.peak == peak_pressure(schedule)


class TestConstructCycles:
    def test_alive_ant_is_legal_and_meets_target(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg, CriticalPathHeuristic())
        target = {VGPR: 4}
        result = construct_cycles(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(2),
            target_pressure=target, allow_optional_stalls=True,
        )
        assert result.alive
        schedule = Schedule(fig1_ddg.region, result.cycles)
        validate_schedule(schedule, fig1_ddg, vega)
        assert result.peak[VGPR] <= 4
        assert result.peak == peak_pressure(schedule)

    def test_tight_target_with_stalls(self, fig1_ddg, vega):
        """PRP 3 on Figure 1 requires optional stalls (the paper's example)."""
        params = ACOParams(optional_stall_budget=1.0, optional_stall_prob=1.0)
        pheromone = PheromoneTable(7, params)
        prepared = LastUseCountHeuristic().prepare(fig1_ddg)
        successes = 0
        for seed in range(20):
            result = construct_cycles(
                fig1_ddg, vega, pheromone, prepared, params, random.Random(seed),
                target_pressure={VGPR: 3}, allow_optional_stalls=True,
            )
            if result.alive:
                successes += 1
                assert result.peak[VGPR] <= 3
                validate_schedule(Schedule(fig1_ddg.region, result.cycles), fig1_ddg, vega)
        assert successes > 0

    def test_impossible_target_kills_ant(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_cycles(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(2),
            target_pressure={VGPR: 1}, allow_optional_stalls=True,
        )
        assert not result.alive

    def test_no_stalls_allowed_can_die(self, vega, wide_region):
        ddg = DDG(wide_region)
        params, pheromone, prepared = _setup(ddg, CriticalPathHeuristic())
        # Tight-ish target with stalls disallowed: ants must pick safe
        # candidates or die; either way the result is well-defined.
        result = construct_cycles(
            ddg, vega, pheromone, prepared, params, random.Random(0),
            target_pressure={VGPR: 2}, allow_optional_stalls=False,
        )
        if result.alive:
            assert result.peak[VGPR] <= 2

    def test_max_length_kills_runaways(self, fig1_ddg, vega):
        params, pheromone, prepared = _setup(fig1_ddg)
        result = construct_cycles(
            fig1_ddg, vega, pheromone, prepared, params, random.Random(2),
            target_pressure={VGPR: 10}, allow_optional_stalls=False, max_length=2,
        )
        assert not result.alive

    def test_optional_stalls_counted(self, fig1_ddg, vega):
        params = ACOParams(optional_stall_budget=1.0, optional_stall_prob=1.0)
        pheromone = PheromoneTable(7, params)
        prepared = LastUseCountHeuristic().prepare(fig1_ddg)
        stall_heuristic = OptionalStallHeuristic(params, 7)
        for seed in range(10):
            result = construct_cycles(
                fig1_ddg, vega, pheromone, prepared, params, random.Random(seed),
                target_pressure={VGPR: 3}, allow_optional_stalls=True,
                stall_heuristic=stall_heuristic,
            )
            assert result.stats.optional_stalls <= stall_heuristic.max_optional_stalls

    @given(ddgs(max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_alive_results_always_legal(self, ddg):
        vega = amd_vega20()
        params, pheromone, prepared = _setup(ddg, CriticalPathHeuristic())
        target = vega.aprp({VGPR: 64})
        result = construct_cycles(
            ddg, vega, pheromone, prepared, params, random.Random(11),
            target_pressure=target, allow_optional_stalls=True,
        )
        if result.alive:
            schedule = Schedule(ddg.region, result.cycles)
            validate_schedule(schedule, ddg, vega)
            assert result.peak == peak_pressure(schedule)
            for cls, limit in target.items():
                assert result.peak.get(cls, 0) <= limit
