"""Checkpoint serialization and resume-equivalence tests.

The load-bearing property: a run interrupted by a hang and resumed from
its checkpoint lands on the *same* final schedule as the uninterrupted
run — checkpoint/resume is a pure recovery mechanism, never a behavior
change. Serialization must round-trip bit-identically for that to hold
across process boundaries.
"""

import numpy as np
import pytest

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG
from repro.errors import DeviceHangError, ResilienceError
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.parallel import ParallelACOScheduler
from repro.resilience.checkpoint import CHECKPOINT_VERSION, RegionCheckpoint
from repro.schedule import validate_schedule

from conftest import make_region


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(scope="module")
def ddg():
    return DDG(make_region("sort", 2, 14))


def parallel(machine, backend="vectorized"):
    return ParallelACOScheduler(
        machine,
        params=ACOParams(max_iterations=12),
        gpu_params=GPUParams(blocks=4),
        backend=backend,
    )


def interrupt(scheduler, ddg, seed=5) -> RegionCheckpoint:
    """Run under a certain-hang plan and return the watchdog's checkpoint."""
    with pytest.raises(DeviceHangError) as info:
        scheduler.schedule(ddg, seed=seed, fault_plan=FaultPlan(seed=1, rates={"hang": 1.0}))
    assert info.value.checkpoint is not None
    return info.value.checkpoint


class TestSerialization:
    def test_json_round_trip_is_bit_identical(self, machine, ddg):
        cp = interrupt(parallel(machine), ddg)
        text = cp.to_json()
        back = RegionCheckpoint.from_json(text)
        assert back.to_json() == text
        assert np.array_equal(back.tau, cp.tau)
        assert back.tau.tobytes() == cp.tau.tobytes()
        assert back.best_order == cp.best_order
        assert back.best_peak == cp.best_peak
        assert back.rng_state == cp.rng_state
        assert back.extras == cp.extras

    def test_unknown_version_rejected(self, machine, ddg):
        payload = interrupt(parallel(machine), ddg).to_payload()
        payload["checkpoint_version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ResilienceError):
            RegionCheckpoint.from_payload(payload)

    def test_exact_rng_resume_requires_population_match(self, machine, ddg):
        cp = interrupt(parallel(machine), ddg)
        assert cp.exact_rng_resume(cp.num_ants)
        assert not cp.exact_rng_resume(cp.num_ants + 1)
        cp.rng_state = None
        assert not cp.exact_rng_resume(cp.num_ants)


class TestResumeEquivalence:
    def test_resumed_equals_uninterrupted(self, machine, ddg):
        """Hang, resume from the checkpoint, land on the identical result."""
        scheduler = parallel(machine)
        uninterrupted = scheduler.schedule(ddg, seed=5)
        cp = interrupt(parallel(machine), ddg)
        resumed = parallel(machine).schedule(ddg, seed=cp.seed, resume=cp)
        assert resumed.schedule.cycles == uninterrupted.schedule.cycles
        assert resumed.schedule.order == uninterrupted.schedule.order
        # The resumed run repeats no completed iterations.
        total_resumed = resumed.pass1.iterations + resumed.pass2.iterations
        total_plain = uninterrupted.pass1.iterations + uninterrupted.pass2.iterations
        assert total_resumed == total_plain

    def test_serialized_resume_equals_uninterrupted(self, machine, ddg):
        """Same equivalence across a JSON round trip (process boundary)."""
        uninterrupted = parallel(machine).schedule(ddg, seed=5)
        cp = RegionCheckpoint.from_json(interrupt(parallel(machine), ddg).to_json())
        resumed = parallel(machine).schedule(ddg, seed=cp.seed, resume=cp)
        assert resumed.schedule.cycles == uninterrupted.schedule.cycles

    def test_cross_backend_resume_is_exact(self, machine, ddg):
        """The loop engine continues a vectorized checkpoint draw-for-draw
        (both engines share spawn-indexed RNG streams by construction)."""
        uninterrupted = parallel(machine).schedule(ddg, seed=5)
        cp = interrupt(parallel(machine, "vectorized"), ddg)
        resumed = parallel(machine, "loop").schedule(ddg, seed=cp.seed, resume=cp)
        assert resumed.schedule.cycles == uninterrupted.schedule.cycles

    def test_partial_resume_into_sequential(self, machine, ddg):
        """Degrading to the CPU engine keeps the search's progress (tau,
        best, counters) even though the RNG cannot continue exactly."""
        cp = interrupt(parallel(machine), ddg)
        sequential = SequentialACOScheduler(machine, params=ACOParams(max_iterations=12))
        result = sequential.schedule(ddg, seed=cp.seed, resume=cp)
        validate_schedule(result.schedule, ddg, machine)
        # The resumed search can only match or beat the checkpointed best.
        final_cost = result.pass2.final_cost
        if cp.pass_index == 2:
            assert final_cost <= cp.best_cost

    def test_wrong_region_rejected(self, machine, ddg):
        cp = interrupt(parallel(machine), ddg)
        other = DDG(make_region("scan", 9, 12))
        with pytest.raises(ResilienceError):
            parallel(machine).schedule(other, seed=cp.seed, resume=cp)
