"""Tests for issue widths > 1 (the 'general machine model' of Section II-A).

The paper's evaluation uses a single-issue model but its implementation
"supports a general machine model"; here the greedy list scheduler and the
legality checker are exercised with a dual-issue target.
"""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG
from repro.heuristics import CriticalPathHeuristic, list_schedule
from repro.ir import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import MachineModel, OccupancyTable
from repro.schedule import Schedule, validate_schedule
from repro.errors import ScheduleError

from conftest import ddgs


@pytest.fixture
def dual_issue():
    return MachineModel(
        name="dual-issue",
        occupancy_tables={VGPR: OccupancyTable([(24, 10), (32, 8), (256, 1)])},
        issue_width=2,
        wavefront_size=64,
    )


@pytest.fixture
def independent_pairs():
    b = RegionBuilder("pairs")
    for i in range(6):
        b.inst("op1", defs=["v%d" % i])
    return b.build()


class TestDualIssue:
    def test_packs_two_per_cycle(self, dual_issue, independent_pairs):
        ddg = DDG(independent_pairs)
        schedule = list_schedule(ddg, dual_issue, heuristic=CriticalPathHeuristic())
        validate_schedule(schedule, ddg, dual_issue)
        assert schedule.length == 3  # 6 independent ops at width 2

    def test_validator_allows_two_but_not_three(self, dual_issue, independent_pairs):
        ddg = DDG(independent_pairs)
        two_wide = Schedule(independent_pairs, [0, 0, 1, 1, 2, 2])
        validate_schedule(two_wide, ddg, dual_issue)
        three_wide = Schedule(independent_pairs, [0, 0, 0, 1, 1, 2])
        with pytest.raises(ScheduleError):
            validate_schedule(three_wide, ddg, dual_issue)

    def test_latency_still_respected(self, dual_issue):
        b = RegionBuilder("lat")
        b.inst("op5", defs=["v0"])
        b.inst("op1", defs=["v1"], uses=["v0"])
        b.inst("op1", defs=["v2"])
        ddg = DDG(b.build())
        schedule = list_schedule(ddg, dual_issue, heuristic=CriticalPathHeuristic())
        validate_schedule(schedule, ddg, dual_issue)
        assert schedule.cycles[1] >= schedule.cycles[0] + 5

    @given(ddgs(max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_always_legal_and_never_longer_than_single_issue(self, ddg):
        from repro.machine import amd_vega20

        dual_issue = MachineModel(
            name="dual-issue",
            occupancy_tables={VGPR: OccupancyTable([(24, 10), (32, 8), (256, 1)])},
            issue_width=2,
            wavefront_size=64,
        )
        wide = list_schedule(ddg, dual_issue, heuristic=CriticalPathHeuristic())
        validate_schedule(wide, ddg, dual_issue)
        narrow = list_schedule(ddg, amd_vega20(), heuristic=CriticalPathHeuristic())
        assert wide.length <= narrow.length
