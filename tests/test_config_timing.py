"""Tests for configuration dataclasses and the cost models."""

import pytest

from repro.config import (
    ACOParams,
    FilterParams,
    GPUParams,
    ReproConfig,
    SIZE_CLASS_LABELS,
    SuiteParams,
    geometric_mean,
    replace_params,
    size_class_index,
)
from repro.errors import ConfigError
from repro.timing import (
    CompileTimeModel,
    CPUCostModel,
    DEFAULT_COMPILE_TIME,
    DEFAULT_CPU_COST,
    DEFAULT_GPU_COST,
    GPUCostModel,
)


class TestSizeClasses:
    def test_paper_classes(self):
        assert size_class_index(1) == 0
        assert size_class_index(49) == 0
        assert size_class_index(50) == 1
        assert size_class_index(99) == 1
        assert size_class_index(100) == 2
        assert size_class_index(2223) == 2

    def test_labels(self):
        assert SIZE_CLASS_LABELS == ("1-49", "50-99", ">=100")

    def test_zero_rejected(self):
        with pytest.raises(ConfigError):
            size_class_index(0)


class TestACOParams:
    def test_defaults_valid(self):
        ACOParams().validate()

    def test_paper_settings(self):
        params = ACOParams()
        assert params.decay == 0.8  # Section IV-A
        assert params.termination_conditions == (1, 2, 3)  # Section VI-A

    def test_termination_by_size(self):
        params = ACOParams()
        assert params.termination_condition(10) == 1
        assert params.termination_condition(75) == 2
        assert params.termination_condition(500) == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(exploitation_prob=1.5),
            dict(decay=0.0),
            dict(initial_pheromone=0.0),
            dict(min_pheromone=2.0, max_pheromone=1.0),
            dict(termination_conditions=(1, 2)),
            dict(termination_conditions=(0, 1, 2)),
            dict(sequential_ants=0),
            dict(max_iterations=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ACOParams(**kwargs).validate()


class TestGPUParams:
    def test_paper_geometry(self):
        gpu = GPUParams()
        assert gpu.blocks == 180
        assert gpu.threads_per_block == 64
        assert gpu.total_threads == 11_520  # Section IV-B
        assert gpu.wavefronts == 180
        gpu.validate(64)

    def test_threads_must_match_wavefront(self):
        with pytest.raises(ConfigError):
            GPUParams(threads_per_block=32).validate(64)

    def test_bad_fraction(self):
        with pytest.raises(ConfigError):
            GPUParams(stall_wavefront_fraction=1.5).validate(64)

    def test_replace_params(self):
        gpu = replace_params(GPUParams(), blocks=4)
        assert gpu.blocks == 4
        assert gpu.soa_layout  # untouched


class TestFilterAndSuiteParams:
    def test_defaults(self):
        filters = FilterParams()
        assert filters.cycle_threshold == 21  # Table 7's best
        assert filters.revert_occupancy_gain == 3
        assert filters.revert_length_degradation == 63
        filters.validate()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            FilterParams(cycle_threshold=-1).validate()
        with pytest.raises(ConfigError):
            SuiteParams(num_kernels=0).validate()

    def test_repro_config_validates_all(self):
        ReproConfig().validate()


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestCostModels:
    def test_cpu_construction_linear(self):
        model = CPUCostModel()
        assert model.construction_seconds(10, 100, 50) == pytest.approx(
            10 * model.step_op + 100 * model.ready_scan_op + 50 * model.successor_op
        )
        assert model.pheromone_seconds(1000) == pytest.approx(1000 * model.pheromone_op)

    def test_gpu_copy_model(self):
        model = GPUCostModel()
        assert model.copy_seconds(0, 1) == pytest.approx(model.per_copy_call)
        assert model.copy_seconds(8_000_000_000, 0) == pytest.approx(
            8_000_000_000 / model.copy_bandwidth
        )

    def test_gpu_kernel_batches(self):
        model = GPUCostModel(compute_units=1, simds_per_cu=1, clock_hz=1e9)
        one = model.kernel_seconds(1000.0, 1)
        two = model.kernel_seconds(1000.0, 2)
        assert two == pytest.approx(2 * one)

    def test_compile_time_model(self):
        model = CompileTimeModel()
        assert model.heuristic_seconds(100) > model.heuristic_seconds(10)
        assert model.base_seconds(1000, 2) == pytest.approx(
            1000 * model.base_per_instruction + 2 * model.base_per_kernel
        )

    def test_defaults_exported(self):
        assert DEFAULT_CPU_COST.ready_scan_op > 0
        assert DEFAULT_GPU_COST.clock_hz == 1.8e9  # Radeon VII clock
        assert DEFAULT_GPU_COST.compute_units == 60
        assert DEFAULT_COMPILE_TIME.base_per_instruction > 0
