"""Tests for the synthetic benchmark-suite generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SuiteParams
from repro.ddg import DDG
from repro.suite import PATTERN_NAMES, generate_suite, pattern_region, random_region
from repro.suite.patterns import RegionShape
from repro.suite.rng import derive_seed, derived_rng


class TestRNG:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_derive_seed_varies_by_identity(self):
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_derived_rng_streams_independent(self):
        a = derived_rng(7, "x")
        b = derived_rng(7, "y")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


class TestPatterns:
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    @pytest.mark.parametrize("size", [1, 2, 5, 17, 64])
    def test_exact_size(self, pattern, size):
        region = pattern_region(pattern, random.Random(3), size)
        assert region.size == size

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_ddg_buildable(self, pattern):
        region = pattern_region(pattern, random.Random(5), 40)
        ddg = DDG(region)
        assert ddg.num_instructions == 40

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            pattern_region("bogus", random.Random(0), 10)

    def test_deterministic_in_rng(self):
        a = pattern_region("transform", random.Random(9), 30)
        b = pattern_region("transform", random.Random(9), 30)
        assert a == b

    def test_scan_is_more_serial_than_reduce(self):
        """The scan pattern has a longer critical chain (lower ILP) than the
        reduce pattern at the same size."""
        from repro.ddg import critical_path_info

        scan_ddg = DDG(pattern_region("scan", random.Random(2), 50))
        reduce_ddg = DDG(pattern_region("reduce", random.Random(2), 50))
        assert len(scan_ddg.roots) < len(reduce_ddg.roots) / 2
        assert critical_path_info(scan_ddg).critical_path_length >= 30

    def test_reduce_has_wide_front(self):
        """The reduce pattern opens many independent loads."""
        region = pattern_region("reduce", random.Random(2), 40)
        ddg = DDG(region)
        assert len(ddg.roots) >= 10

    def test_gemm_tile_pins_accumulators(self):
        region = pattern_region("gemm_tile", random.Random(2), 60)
        assert len(region.live_out) >= 4

    def test_random_region_shape_knobs(self):
        serial = random_region(
            random.Random(1), 40, RegionShape(chain_bias=1.0, load_fraction=0.05)
        )
        wide = random_region(
            random.Random(1), 40, RegionShape(chain_bias=0.0, load_fraction=0.7)
        )
        assert len(DDG(wide).roots) > len(DDG(serial).roots)

    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30)
    def test_all_patterns_all_sizes(self, size, seed):
        for pattern in PATTERN_NAMES:
            region = pattern_region(pattern, random.Random(seed), size)
            assert region.size == size


class TestGenerateSuite:
    def test_shape(self):
        params = SuiteParams(num_benchmarks=10, num_kernels=5, regions_per_kernel=4)
        suite = generate_suite(params, max_region_size=100)
        assert len(suite.kernels) == 5
        assert len(suite.benchmarks) == 10
        assert suite.num_regions == 20
        for kernel in suite.kernels:
            assert all(r.size <= 100 for r in kernel.regions)
            assert sum(kernel.region_weights) == pytest.approx(1.0)
            assert 0.4 <= kernel.memory_intensity <= 2.8

    def test_benchmarks_reference_kernels(self):
        suite = generate_suite(
            SuiteParams(num_benchmarks=7, num_kernels=3, regions_per_kernel=2)
        )
        for benchmark in suite.benchmarks:
            assert suite.kernel(benchmark.kernel_name) is not None
            assert benchmark.workload_bytes > 0

    def test_deterministic(self):
        params = SuiteParams(num_benchmarks=4, num_kernels=3, regions_per_kernel=2, seed=11)
        a = generate_suite(params)
        b = generate_suite(params)
        for ka, kb in zip(a.kernels, b.kernels):
            assert ka.regions == kb.regions
            assert ka.memory_intensity == kb.memory_intensity

    def test_seed_changes_content(self):
        a = generate_suite(SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=2, seed=1))
        b = generate_suite(SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=2, seed=2))
        assert any(ka.regions != kb.regions for ka, kb in zip(a.kernels, b.kernels))

    def test_hot_regions_are_large(self):
        suite = generate_suite(
            SuiteParams(num_benchmarks=2, num_kernels=4, regions_per_kernel=6)
        )
        for kernel in suite.kernels:
            hottest = max(
                range(len(kernel.regions)), key=lambda i: kernel.region_weights[i]
            )
            biggest = max(range(len(kernel.regions)), key=lambda i: len(kernel.regions[i]))
            assert hottest == biggest

    def test_size_distribution_has_tail(self):
        suite = generate_suite(
            SuiteParams(num_benchmarks=2, num_kernels=40, regions_per_kernel=10),
            max_region_size=1200,
        )
        sizes = [r.size for _k, r in suite.all_regions()]
        assert min(sizes) >= 4
        assert sum(1 for s in sizes if s <= 30) > len(sizes) * 0.35
        assert max(sizes) > 150
