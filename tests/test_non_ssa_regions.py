"""End-to-end tests on non-SSA regions (redefinitions, anti/output deps).

The suite generator emits SSA-ish regions, so these hand-built regions
cover the other half of the DDG builder and the kill-before-def guards in
both pressure trackers: accumulators updated in place, registers
redefined after use, and write-after-write chains.
"""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import GPUParams
from repro.ddg import DDG
from repro.ddg.graph import DepKind
from repro.heuristics import AMDMaxOccupancyScheduler, CriticalPathHeuristic, list_schedule
from repro.ir import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.parallel import ParallelACOScheduler
from repro.rp import peak_pressure
from repro.schedule import validate_schedule


@pytest.fixture
def accumulate_in_place():
    """v0 += ... three times: flow+anti+output deps around one register."""
    b = RegionBuilder("accumulate")
    b.inst("v_mov", defs=["v0"])
    b.inst("global_load", defs=["v1"])
    b.inst("v_add", defs=["v0"], uses=["v0", "v1"])
    b.inst("global_load", defs=["v2"])
    b.inst("v_add", defs=["v0"], uses=["v0", "v2"])
    b.inst("global_store", uses=["v0"])
    return b.live_out().build()


@pytest.fixture
def redefinition_region():
    """v0 defined, used, then redefined for an unrelated computation."""
    b = RegionBuilder("redef")
    b.inst("op2", defs=["v0"])
    b.inst("op1", defs=["v1"], uses=["v0"])
    b.inst("op2", defs=["v0"])  # reuse the name
    b.inst("op1", defs=["v2"], uses=["v0", "v1"])
    return b.live_out("v2").build()


class TestDependences:
    def test_accumulator_chain_is_serialized(self, accumulate_in_place):
        ddg = DDG(accumulate_in_place)
        # The three defs of v0 form an output-dependence chain; the adds
        # also flow-depend on the previous value.
        kinds = {(e.src, e.dst, e.kind) for e in ddg.edges}
        assert (0, 2, DepKind.FLOW) in kinds
        assert (0, 2, DepKind.OUTPUT) in kinds
        assert (2, 4, DepKind.FLOW) in kinds

    def test_redefinition_creates_anti_dep(self, redefinition_region):
        ddg = DDG(redefinition_region)
        kinds = {(e.src, e.dst): e.kind for e in ddg.edges if e.kind is DepKind.ANTI}
        assert (1, 2) in kinds  # the reader of v0 must precede the redef

    def test_no_false_reordering(self, redefinition_region, vega):
        """Any legal schedule keeps the reader before the redefinition."""
        ddg = DDG(redefinition_region)
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        assert schedule.cycles[1] < schedule.cycles[2]
        validate_schedule(schedule, ddg, vega)


class TestPressureOnNonSSA:
    def test_in_place_accumulation_uses_one_register(self, accumulate_in_place):
        ddg = DDG(accumulate_in_place)
        amd = AMDMaxOccupancyScheduler(amd_vega20())
        schedule = amd.schedule(ddg)
        # v0 is one live range through the region; loads add at most one
        # more concurrently under any legal order here.
        assert peak_pressure(schedule)[VGPR] <= 3

    def test_schedulers_agree_on_peak_accounting(self, redefinition_region):
        """Sequential and parallel pressure accounting must agree with the
        liveness recomputation on non-SSA inputs too."""
        machine = simple_test_target()
        ddg = DDG(redefinition_region)
        seq = SequentialACOScheduler(machine).schedule(ddg, seed=1)
        assert seq.peak == peak_pressure(seq.schedule)
        par = ParallelACOScheduler(machine, gpu_params=GPUParams(blocks=1)).schedule(
            ddg, seed=1
        )
        assert par.peak == peak_pressure(par.schedule)
        validate_schedule(par.schedule, ddg, machine)


class TestEndToEnd:
    def test_pipeline_compiles_non_ssa(self, accumulate_in_place):
        from repro.pipeline import CompilePipeline

        machine = simple_test_target()
        pipeline = CompilePipeline(
            machine, scheduler=SequentialACOScheduler(machine)
        )
        outcome = pipeline.compile_region(DDG(accumulate_in_place))
        validate_schedule(outcome.schedule, DDG(accumulate_in_place), machine)

    def test_exact_solver_handles_non_ssa(self, redefinition_region):
        from repro.exact import min_length_schedule, min_pressure_order
        from repro.rp import rp_cost
        from repro.schedule import Schedule

        machine = simple_test_target()
        ddg = DDG(redefinition_region)
        order, cost = min_pressure_order(ddg, machine)
        schedule = Schedule.from_order(ddg.region, order)
        validate_schedule(schedule, ddg, respect_latencies=False)
        assert rp_cost(peak_pressure(schedule), machine) == cost
        optimal = min_length_schedule(ddg, machine)
        validate_schedule(optimal, ddg, machine)
