"""Per-rule fixture tests: one seeded true positive and one clean negative
for every shipped rule family, run through the full engine against a
pseudo-package laid out in tmp_path (same idiom as test_analysis_lint)."""

from repro.analysis.static import analyze_paths


def _scan(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    report = analyze_paths([str(tmp_path)])
    return [(f.rule_id, f.rel) for f in report.findings]


class TestDET001Legacy:
    def test_positive_global_random_in_kernel_path(self, tmp_path):
        hits = _scan(tmp_path, {"aco/bad.py": "import random\nx = random.random()\n"})
        assert ("DET-001", "aco/bad.py") in hits

    def test_negative_outside_kernel_path(self, tmp_path):
        hits = _scan(tmp_path, {"viz/ok.py": "import random\nx = random.random()\n"})
        assert all(rule != "DET-001" for rule, _ in hits)


class TestDET002UnorderedIteration:
    def test_positive_set_call(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"rp/bad.py": "def f(xs):\n    for x in set(xs):\n        pass\n"},
        )
        assert hits == [("DET-002", "rp/bad.py")]

    def test_positive_set_literal_comprehension(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"ddg/bad.py": "def f():\n    return [x for x in {1, 2, 3}]\n"},
        )
        assert hits == [("DET-002", "ddg/bad.py")]

    def test_negative_sorted_and_non_kernel(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "rp/ok.py": "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n",
                "viz/ok.py": "def f(xs):\n    for x in set(xs):\n        pass\n",
            },
        )
        assert hits == []


class TestDET003EnvironmentRead:
    def test_positive_getenv_and_subscript(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "experiments/bad.py": (
                    "import os\n"
                    "a = os.environ.get('REPRO_X')\n"
                    "b = os.environ['REPRO_Y']\n"
                )
            },
        )
        assert hits == [
            ("DET-003", "experiments/bad.py"),
            ("DET-003", "experiments/bad.py"),
        ]

    def test_negative_config_module_and_env_write(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "config.py": "import os\nx = os.environ.get('REPRO_SCALE')\n",
                "cli.py": "import os\n\ndef f():\n    os.environ['REPRO_X'] = '1'\n",
            },
        )
        assert hits == []


class TestDET004WallClockDate:
    def test_positive_datetime_now_anywhere(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "viz/bad.py": (
                    "import datetime\n"
                    "stamp = datetime.datetime.now()\n"
                )
            },
        )
        assert hits == [("DET-004", "viz/bad.py")]

    def test_negative_unrelated_now(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"viz/ok.py": "def f(clock):\n    return clock.now()\n"},
        )
        assert hits == []


class TestDET005UnorderedMerge:
    def test_positive_set_iteration_in_merge(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "viz/bad.py": (
                    "def merge_results(parts):\n"
                    "    out = []\n"
                    "    for key in set(parts):\n"
                    "        out.append(parts[key])\n"
                    "    return out\n"
                )
            },
        )
        assert hits == [("DET-005", "viz/bad.py")]

    def test_positive_set_op_result_in_reduce(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "viz/bad.py": (
                    "def reduce_keys(a, b):\n"
                    "    return [k for k in a.union(b)]\n"
                )
            },
        )
        assert hits == [("DET-005", "viz/bad.py")]

    def test_positive_outside_kernel_paths_too(self, tmp_path):
        # Unlike DET-002, merges are policed everywhere (the fleet merge
        # contract does not care which package the reduce lives in).
        hits = _scan(
            tmp_path,
            {
                "experiments/bad.py": (
                    "def combine(xs):\n"
                    "    for x in {1, 2, 3}:\n"
                    "        yield x\n"
                )
            },
        )
        assert hits == [("DET-005", "experiments/bad.py")]

    def test_negative_sorted_indices_and_non_merge_names(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "viz/ok.py": (
                    "def merge_sorted(parts):\n"
                    "    return [parts[k] for k in sorted(set(parts))]\n"
                    "\n"
                    "def merge_indexed(n, by_slot):\n"
                    "    return [by_slot[i] for i in range(n)]\n"
                    "\n"
                    "def walk(xs):\n"
                    "    for x in set(xs):\n"
                    "        pass\n"
                ),
            },
        )
        assert hits == []


class TestRNG101NakedGenerator:
    def test_positive_random_random_in_aco(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"aco/bad.py": "import random\nrng = random.Random(3)\n"},
        )
        assert hits == [("RNG-101", "aco/bad.py")]

    def test_positive_from_import_alias(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"parallel/bad.py": "from numpy.random import default_rng\nr = default_rng(1)\n"},
        )
        assert hits == [("RNG-101", "parallel/bad.py")]

    def test_negative_owner_modules_and_other_packages(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/rng.py": "import random\nroot = random.Random(0)\n",
                "aco/seeding.py": "import random\n\ndef launch_rng(s):\n    return random.Random(s)\n",
                "suite/ok.py": "import random\nrng = random.Random(5)\n",
            },
        )
        assert hits == []


class TestRNG102SpawnOutsideOwner:
    def test_positive_spawn_in_parallel(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"parallel/bad.py": "def f(streams):\n    return streams.spawn(4)\n"},
        )
        assert hits == [("RNG-102", "parallel/bad.py")]

    def test_negative_owner_and_non_scoped(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/rng.py": "def fan_out(root, n):\n    return root.spawn(n)\n",
                "suite/ok.py": "def f(seq):\n    return seq.spawn(2)\n",
            },
        )
        assert hits == []


class TestDIV201PerLaneLoop:
    def test_positive_loop_over_lane_axis(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/vectorized.py": (
                    "class Colony:\n"
                    "    def step(self):\n"
                    "        for a in range(self.num_ants):\n"
                    "            pass\n"
                )
            },
        )
        assert hits == [("DIV-201", "parallel/vectorized.py")]

    def test_negative_loop_backend_is_exempt(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/loop.py": (
                    "class Colony:\n"
                    "    def step(self):\n"
                    "        for a in range(self.num_ants):\n"
                    "            pass\n"
                )
            },
        )
        assert hits == []


class TestDIV202LaneArrayAliasing:
    def test_positive_bare_attribute_aliasing(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/vectorized.py": (
                    "class Colony:\n"
                    "    def reset(self):\n"
                    "        self.dead = self.active\n"
                )
            },
        )
        assert hits == [("DIV-202", "parallel/vectorized.py")]

    def test_negative_copy_and_slice_write(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "parallel/vectorized.py": (
                    "class Colony:\n"
                    "    def reset(self):\n"
                    "        self.dead = self.active.copy()\n"
                    "        self.done[:] = self.active\n"
                )
            },
        )
        assert hits == []


class TestACC301AccountingWrite:
    def test_positive_cycles_write_outside_owner(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "aco/bad.py": (
                    "def f(acct):\n"
                    "    acct.compute_cycles += 5\n"
                    "    acct.total_seconds = 1.0\n"
                )
            },
        )
        assert hits == [("ACC-301", "aco/bad.py"), ("ACC-301", "aco/bad.py")]

    def test_negative_owner_modules(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "gpusim/kernel.py": "def f(acct):\n    acct.compute_cycles += 5\n",
                "profile/spans.py": "def f(span):\n    span.leaf_seconds += 1.0\n",
                "timing.py": "def f(ledger):\n    ledger.total_seconds = 0.0\n",
            },
        )
        assert hits == []


class TestACC302HandRolledAccumulator:
    def test_positive_seconds_accumulator(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "aco/bad.py": (
                    "def f(items):\n"
                    "    seconds = 0.0\n"
                    "    for x in items:\n"
                    "        seconds += x\n"
                    "    return seconds\n"
                )
            },
        )
        assert hits == [("ACC-302", "aco/bad.py")]

    def test_negative_outside_scheduler_packages(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "bench/ok.py": (
                    "def f(items):\n"
                    "    seconds = 0.0\n"
                    "    for x in items:\n"
                    "        seconds += x\n"
                    "    return seconds\n"
                )
            },
        )
        assert hits == []


class TestLAY401ImportLayering:
    def test_positive_gpusim_importing_aco(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"gpusim/bad.py": "from ..aco.sequential import ACOResult\n"},
        )
        assert hits == [("LAY-401", "gpusim/bad.py")]

    def test_positive_absolute_spelling(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"obs/bad.py": "import repro.parallel.colony\n"},
        )
        assert hits == [("LAY-401", "obs/bad.py")]

    def test_positive_from_dot_import(self, tmp_path):
        hits = _scan(
            tmp_path,
            {"telemetry/bad.py": "from .. import gpusim\n"},
        )
        assert hits == [("LAY-401", "telemetry/bad.py")]

    def test_negative_allowed_edges(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "gpusim/ok.py": "from ..timing import HostSecondsLedger\n",
                "aco/ok.py": "from ..rp.cost import rp_cost\n",
                "parallel/ok.py": "from ..gpusim.device import GPUDevice\n",
            },
        )
        assert hits == []

    def test_negative_type_checking_only_import(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "ir/ok.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from ..schedule.schedule import Schedule\n"
                )
            },
        )
        assert hits == []


class TestOBS501HandRolledEvent:
    def test_positive_envelope_dict_literal(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "resilience/bad.py": (
                    "def publish(sink, n):\n"
                    "    sink.write({'v': 1, 'seq': n, 'event': 'fault'})\n"
                )
            },
        )
        assert ("OBS-501", "resilience/bad.py") in hits

    def test_positive_raw_sink_write_of_event_dict(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                "pipeline/bad.py": (
                    "def publish(sink, region):\n"
                    "    sink.write({'event': 'region_end', 'region': region})\n"
                )
            },
        )
        assert hits == [("OBS-501", "pipeline/bad.py")]

    def test_negative_owner_module_and_plain_dicts(self, tmp_path):
        hits = _scan(
            tmp_path,
            {
                # The sanctioned funnel builds the envelope by hand.
                "telemetry/core.py": (
                    "def emit(sink, seq, event):\n"
                    "    record = {'v': 1, 'seq': seq, 'event': event}\n"
                    "    sink.write(record)\n"
                ),
                # Non-event dicts and non-dict writes are fine anywhere.
                "obs/ok.py": (
                    "def save(handle, payload):\n"
                    "    handle.write({'kind': 'schedule', 'order': payload})\n"
                    "    return {'v': 1, 'seq': 2}\n"
                ),
            },
        )
        assert all(rule != "OBS-501" for rule, _ in hits)
