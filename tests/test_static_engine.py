"""Engine-level tests: suppressions, baseline lifecycle, fingerprints,
registry invariants, and reporter output structure."""

import json
import re

from repro.analysis.static import (
    Baseline,
    SYNTAX_RULE_ID,
    all_rules,
    analyze_paths,
    assert_shrunk,
    render_json,
    render_sarif,
    render_text,
    rule_ids,
    scan_suppressions,
)
from repro.analysis.static.core import SEVERITIES


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _analyze(tmp_path, **kwargs):
    return analyze_paths([str(tmp_path)], **kwargs)


BAD_SET_ITER = "def f(items):\n    for x in set(items):\n        pass\n"


class TestRegistry:
    def test_rule_ids_are_unique_and_well_formed(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert re.match(r"^[A-Z]{3}-\d{3}$", rule_id), rule_id

    def test_every_rule_documented(self):
        for rule in all_rules():
            assert rule.summary, rule.rule_id
            assert rule.rationale, rule.rule_id
            assert rule.severity in SEVERITIES
            assert rule.scope in ("file", "project")

    def test_expected_rule_families_present(self):
        ids = set(rule_ids())
        assert {"DET-001", "DET-002", "DET-003", "DET-004"} <= ids
        assert {"RNG-101", "RNG-102"} <= ids
        assert {"DIV-201", "DIV-202"} <= ids
        assert {"ACC-301", "ACC-302"} <= ids
        assert "LAY-401" in ids


class TestSuppressions:
    def test_rule_addressed_noqa(self, tmp_path):
        _write(
            tmp_path,
            "aco/bad.py",
            "def f(items):\n"
            "    for x in set(items):  # repro: noqa[DET-002]\n"
            "        pass\n",
        )
        report = _analyze(tmp_path)
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["DET-002"]

    def test_blanket_noqa(self, tmp_path):
        _write(
            tmp_path,
            "aco/bad.py",
            "def f(items):\n"
            "    for x in set(items):  # repro: noqa\n"
            "        pass\n",
        )
        report = _analyze(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_noqa_for_other_rule_does_not_silence(self, tmp_path):
        _write(
            tmp_path,
            "aco/bad.py",
            "def f(items):\n"
            "    for x in set(items):  # repro: noqa[DET-004]\n"
            "        pass\n",
        )
        report = _analyze(tmp_path)
        assert [f.rule_id for f in report.findings] == ["DET-002"]

    def test_legacy_allow_only_covers_det001(self, tmp_path):
        # lint: allow silences the migrated legacy rule...
        _write(
            tmp_path,
            "aco/legacy.py",
            "import random\nx = random.random()  # lint: allow\n",
        )
        # ...but not the new rule families.
        _write(
            tmp_path,
            "aco/modern.py",
            "def f(items):\n"
            "    for x in set(items):  # lint: allow\n"
            "        pass\n",
        )
        report = _analyze(tmp_path)
        assert [f.rule_id for f in report.findings] == ["DET-002"]
        assert [f.rule_id for f in report.suppressed] == ["DET-001"]

    def test_scan_suppressions_parses_multiple_ids(self):
        sup = scan_suppressions("x = 1  # repro: noqa[DET-002, RNG-101]\n")
        assert sup.noqa[1] == {"DET-002", "RNG-101"}


class TestSyntaxRule:
    def test_unparsable_file_is_reported(self, tmp_path):
        _write(tmp_path, "aco/broken.py", "def f(:\n")
        report = _analyze(tmp_path)
        assert [f.rule_id for f in report.findings] == [SYNTAX_RULE_ID]
        assert report.findings[0].code == "SYN001"


class TestBaseline:
    def test_round_trip_silences_findings(self, tmp_path):
        _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        first = _analyze(tmp_path)
        assert len(first.findings) == 1

        baseline_path = tmp_path / ".repro-static-baseline.json"
        Baseline.from_findings(first.all_raw_findings()).save(str(baseline_path))

        second = _analyze(tmp_path, baseline=Baseline.load(str(baseline_path)))
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.stale_baseline == []
        assert second.exit_code == 0

    def test_fingerprint_survives_line_drift(self, tmp_path):
        target = _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        first = _analyze(tmp_path)
        baseline = Baseline.from_findings(first.all_raw_findings())

        # Unrelated lines above the violation do not invalidate the entry.
        target.write_text("import os\n\n\n" + BAD_SET_ITER)
        drifted = _analyze(tmp_path, baseline=baseline)
        assert drifted.findings == []
        assert len(drifted.baselined) == 1

    def test_fixed_finding_becomes_stale_entry(self, tmp_path):
        target = _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        baseline = Baseline.from_findings(_analyze(tmp_path).all_raw_findings())

        target.write_text("def f(items):\n    for x in sorted(items):\n        pass\n")
        fixed = _analyze(tmp_path, baseline=baseline)
        assert fixed.findings == []
        assert fixed.baselined == []
        assert len(fixed.stale_baseline) == 1

    def test_editing_the_violating_line_resurfaces_it(self, tmp_path):
        target = _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        baseline = Baseline.from_findings(_analyze(tmp_path).all_raw_findings())

        target.write_text("def f(items):\n    for x in set(list(items)):\n        pass\n")
        edited = _analyze(tmp_path, baseline=baseline)
        assert [f.rule_id for f in edited.findings] == ["DET-002"]

    def test_saved_file_is_byte_stable(self, tmp_path):
        _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        report = _analyze(tmp_path)
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        Baseline.from_findings(report.all_raw_findings()).save(str(a))
        Baseline.from_findings(report.all_raw_findings()).save(str(b))
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["version"] == 1

    def test_assert_shrunk(self, tmp_path):
        _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        _write(tmp_path, "aco/also_bad.py", BAD_SET_ITER)
        full = Baseline.from_findings(_analyze(tmp_path).all_raw_findings())
        half = Baseline(full.entries[:1])
        assert assert_shrunk(full, half) == []
        grown = assert_shrunk(half, full)
        assert len(grown) == 1


class TestReporters:
    def _report(self, tmp_path):
        _write(tmp_path, "aco/bad.py", BAD_SET_ITER)
        return _analyze(tmp_path)

    def test_text_lists_findings_and_summary(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "DET-002" in text
        assert "1 finding(s)" in text

    def test_text_clean_summary(self, tmp_path):
        _write(tmp_path, "viz/ok.py", "x = 1\n")
        text = render_text(_analyze(tmp_path))
        assert "static analysis: clean" in text

    def test_json_structure(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["exit_code"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET-002"
        assert finding["fingerprint"]
        assert finding["path"] == "aco/bad.py"

    def test_sarif_structure(self, tmp_path):
        payload = json.loads(render_sarif(self._report(tmp_path)))
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis.static"
        declared = {r["id"] for r in driver["rules"]}
        assert set(rule_ids()) <= declared
        (result,) = run["results"]
        assert result["ruleId"] == "DET-002"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["partialFingerprints"]["reproStatic/v1"]
