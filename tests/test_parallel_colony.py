"""Tests for the lane-vectorized colony and the parallel scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.aco import PheromoneTable, SequentialACOScheduler
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG
from repro.gpusim import GPUDevice, KernelAccounting
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.parallel import Colony, DivergencePolicy, ParallelACOScheduler, RegionDeviceData
from repro.rp import peak_pressure
from repro.schedule import Schedule, validate_schedule

from strategies import ddgs


def _make_colony(ddg, machine, blocks=2, seed=0, aco=None, **gpu_overrides):
    gpu = GPUParams(blocks=blocks, **gpu_overrides)
    params = aco or ACOParams()
    policy = DivergencePolicy.from_params(gpu)
    data = RegionDeviceData(ddg, machine, tight_ready_bound=gpu.tight_ready_list_bound)
    accounting = KernelAccounting(GPUDevice(), policy.num_wavefronts, coalesced=True)
    colony = Colony(data, params, policy, accounting, np.random.default_rng(seed))
    return colony, data, params


class TestColonyPass1:
    def test_winner_is_valid_order(self, fig1_ddg, vega):
        colony, data, params = _make_colony(fig1_ddg, vega)
        pheromone = PheromoneTable(7, params)
        result = colony.run_rp_iteration(pheromone.tau)
        assert sorted(result.winner_order) == list(range(7))
        schedule = Schedule.from_order(fig1_ddg.region, result.winner_order)
        validate_schedule(schedule, fig1_ddg, respect_latencies=False)

    def test_winner_peak_matches_recomputation(self, fig1_ddg, vega):
        colony, data, params = _make_colony(fig1_ddg, vega, seed=3)
        pheromone = PheromoneTable(7, params)
        result = colony.run_rp_iteration(pheromone.tau)
        schedule = Schedule.from_order(fig1_ddg.region, result.winner_order)
        assert result.winner_peak == peak_pressure(schedule)

    def test_every_ant_tracks_pressure_exactly(self, fig1_ddg, vega):
        """Colony-internal peaks must equal scalar liveness recomputation
        for every ant, not just the winner."""
        colony, data, params = _make_colony(fig1_ddg, vega, blocks=1, seed=7)
        pheromone = PheromoneTable(7, params)
        colony.run_rp_iteration(pheromone.tau)
        for ant in range(colony.num_ants):
            order = [int(i) for i in colony.order_buf[ant]]
            schedule = Schedule.from_order(fig1_ddg.region, order)
            expected = peak_pressure(schedule)
            assert colony._peak_dict(ant) == expected

    def test_finds_figure1_optimum(self, fig1_ddg, tiny_machine):
        """128 ants on a 7-instruction region should find PRP 3 (the paper's
        Figure 1 best) in one iteration."""
        colony, data, params = _make_colony(fig1_ddg, tiny_machine, blocks=2, seed=1)
        pheromone = PheromoneTable(7, params)
        result = colony.run_rp_iteration(pheromone.tau)
        assert result.winner_peak[VGPR] == 3

    def test_deterministic(self, fig1_ddg, vega):
        results = []
        for _ in range(2):
            colony, _, params = _make_colony(fig1_ddg, vega, seed=5)
            pheromone = PheromoneTable(7, params)
            results.append(colony.run_rp_iteration(pheromone.tau).winner_order)
        assert results[0] == results[1]

    def test_accounting_accumulates(self, fig1_ddg, vega):
        colony, data, params = _make_colony(fig1_ddg, vega)
        pheromone = PheromoneTable(7, params)
        colony.run_rp_iteration(pheromone.tau)
        assert np.all(colony.accounting.wavefront_cycles > 0)

    @given(ddgs(max_size=30))
    @settings(max_examples=10, deadline=None)
    def test_pressure_cross_validation_property(self, ddg):
        """The vectorized pressure accounting agrees with the scalar tracker
        on arbitrary generated regions (the core lockstep-correctness
        invariant)."""
        vega = amd_vega20()
        colony, data, params = _make_colony(ddg, vega, blocks=1, seed=2)
        pheromone = PheromoneTable(ddg.num_instructions, params)
        result = colony.run_rp_iteration(pheromone.tau)
        for ant in (0, colony.num_ants // 2, colony.num_ants - 1):
            order = [int(i) for i in colony.order_buf[ant]]
            schedule = Schedule.from_order(ddg.region, order)
            assert colony._peak_dict(ant) == peak_pressure(schedule)


class TestColonyPass2:
    def test_winner_is_legal_and_meets_target(self, fig1_ddg, vega):
        colony, data, params = _make_colony(fig1_ddg, vega, seed=2)
        pheromone = PheromoneTable(7, params)
        target = {VGPR: 4}
        result = colony.run_ilp_iteration(pheromone.tau, target, max_length=40)
        assert result.winner_cycles is not None
        schedule = Schedule(fig1_ddg.region, result.winner_cycles)
        validate_schedule(schedule, fig1_ddg, vega)
        assert peak_pressure(schedule)[VGPR] <= 4
        assert result.winner_cost == schedule.length

    def test_tight_target_needs_stall_wavefronts(self, fig1_ddg, vega):
        params = ACOParams(optional_stall_budget=1.0, optional_stall_prob=1.0)
        colony, data, _ = _make_colony(
            fig1_ddg, vega, blocks=4, seed=3, aco=params,
            stall_wavefront_fraction=1.0,
        )
        pheromone = PheromoneTable(7, params)
        result = colony.run_ilp_iteration(pheromone.tau, {VGPR: 3}, max_length=40)
        assert result.num_alive > 0
        schedule = Schedule(fig1_ddg.region, result.winner_cycles)
        validate_schedule(schedule, fig1_ddg, vega)
        assert peak_pressure(schedule)[VGPR] <= 3

    def test_impossible_target_reports_no_winner(self, fig1_ddg, vega):
        colony, data, params = _make_colony(fig1_ddg, vega, seed=2)
        pheromone = PheromoneTable(7, params)
        result = colony.run_ilp_iteration(pheromone.tau, {VGPR: 1}, max_length=40)
        assert result.num_alive == 0
        assert result.winner_order is None
        assert result.winner_cost == float("inf")

    def test_early_termination_toggle_changes_steps(self, vega):
        from conftest import make_region

        region = make_region("reduce", 11, 30)
        ddg = DDG(region)
        params = ACOParams()
        target = vega.aprp({VGPR: 40})
        steps = {}
        for early in (True, False):
            colony, _, _ = _make_colony(
                ddg, vega, blocks=2, seed=4,
                early_wavefront_termination=early,
            )
            pheromone = PheromoneTable(ddg.num_instructions, params)
            result = colony.run_ilp_iteration(pheromone.tau, dict(target), max_length=200)
            steps[early] = result.steps
        assert steps[True] <= steps[False]

    @given(ddgs(max_size=25))
    @settings(max_examples=8, deadline=None)
    def test_winners_always_legal_property(self, ddg):
        vega = amd_vega20()
        colony, data, params = _make_colony(ddg, vega, blocks=1, seed=6)
        pheromone = PheromoneTable(ddg.num_instructions, params)
        target = vega.aprp({VGPR: 64})
        result = colony.run_ilp_iteration(pheromone.tau, dict(target), max_length=300)
        if result.winner_cycles is not None:
            schedule = Schedule(ddg.region, result.winner_cycles)
            validate_schedule(schedule, ddg, vega)
            peak = peak_pressure(schedule)
            for cls, limit in target.items():
                assert peak.get(cls, 0) <= limit


class TestParallelScheduler:
    def test_matches_sequential_quality_on_figure1(self, fig1_ddg, tiny_machine):
        par = ParallelACOScheduler(
            tiny_machine, gpu_params=GPUParams(blocks=2)
        ).schedule(fig1_ddg, seed=1)
        seq = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=1)
        assert par.peak[VGPR] == seq.peak[VGPR] == 3

    def test_gpu_time_breakdown(self, fig1_ddg, vega):
        result = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=2)).schedule(
            fig1_ddg, seed=1
        )
        if result.pass2.invoked:
            total = (
                result.pass2.kernel_seconds
                + result.pass2.transfer_seconds
                + result.pass2.launch_seconds
            )
            assert result.pass2.seconds == pytest.approx(total)

    def test_deterministic(self, fig1_ddg, vega):
        schedulers = [
            ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=2)) for _ in range(2)
        ]
        results = [s.schedule(fig1_ddg, seed=8) for s in schedulers]
        assert results[0].schedule == results[1].schedule
        assert results[0].seconds == results[1].seconds

    def test_skips_match_sequential(self, fig1_ddg, vega):
        par = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=2)).schedule(
            fig1_ddg, seed=0
        )
        assert not par.pass1.invoked  # Vega: heuristic RP already at APRP LB
        assert par.pass1.seconds == 0.0

    @given(ddgs(max_size=25))
    @settings(max_examples=6, deadline=None)
    def test_schedule_always_legal(self, ddg):
        machine = simple_test_target()
        result = ParallelACOScheduler(
            machine, gpu_params=GPUParams(blocks=1)
        ).schedule(ddg, seed=3)
        validate_schedule(result.schedule, ddg, machine)
        assert result.peak == peak_pressure(result.schedule)
