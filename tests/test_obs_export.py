"""Tests for the OpenMetrics/Perfetto exporters and the format linter."""

import json

import pytest

from repro.config import ACOParams, FilterParams, GPUParams, ResilienceParams, SuiteParams
from repro.ddg import DDG
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.obs import (
    AggregatingSink,
    MetricsAggregator,
    lint_openmetrics,
    to_openmetrics,
    to_perfetto,
)
from repro.parallel import ParallelACOScheduler
from repro.pipeline import CompilePipeline
from repro.aco import SequentialACOScheduler
from repro.resilience.ladder import schedule_with_resilience
from repro.resilience.log import ResilienceLog, resilience_log_session
from repro.suite import generate_suite
from repro.telemetry import MemorySink, TeeSink, Telemetry

from conftest import make_region


@pytest.fixture(scope="module")
def compiled():
    """One small suite compiled with live aggregation + raw records."""
    machine = amd_vega20()
    suite = generate_suite(
        SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=3),
        max_region_size=60,
    )
    aggregator = MetricsAggregator()
    memory = MemorySink()
    tele = Telemetry(TeeSink(memory, AggregatingSink(aggregator)))
    CompilePipeline(
        machine,
        scheduler=SequentialACOScheduler(
            machine, params=ACOParams(max_iterations=8), telemetry=tele
        ),
        filters=FilterParams(cycle_threshold=0),
        telemetry=tele,
    ).compile_suite(suite)
    return aggregator, memory.records


@pytest.fixture(scope="module")
def chaotic():
    """One region through the ladder under rate-1.0 launch faults."""
    machine = amd_vega20()
    ddg = DDG(make_region("stencil", 4, 14))
    sink = MemorySink()
    tele = Telemetry(sink)
    scheduler = ParallelACOScheduler(
        machine,
        params=ACOParams(max_iterations=12),
        gpu_params=GPUParams(blocks=4),
        telemetry=tele,
    )
    with resilience_log_session(ResilienceLog()):
        schedule_with_resilience(
            scheduler, ddg, 5,
            ResilienceParams(enabled=True, max_retries=1),
            telemetry=tele,
            fault_plan=FaultPlan(seed=3, rates={"launch": 1.0}),
        )
    return sink.records


class TestOpenMetrics:
    def test_export_passes_own_linter(self, compiled):
        aggregator, _ = compiled
        text = to_openmetrics(aggregator)
        assert lint_openmetrics(text) == []

    def test_required_families_present(self, compiled):
        aggregator, _ = compiled
        text = to_openmetrics(aggregator)
        assert "repro_region_latency_seconds_p50 " in text
        assert "repro_region_latency_seconds_p99 " in text
        assert "repro_regions_total " in text
        assert "repro_slo_burn_rate " in text
        assert "repro_throughput_regions_per_simulated_second " in text
        assert text.endswith("# EOF\n")

    def test_kernel_seconds_labeled_by_backend(self, chaotic):
        aggregator = MetricsAggregator()
        aggregator.consume_many(chaotic)
        # Under rate-1.0 launch faults no kernel ever runs; add one launch
        # per backend by hand so the label path is exercised too.
        launch = {
            "v": 1, "seq": 100, "event": "kernel_launch", "region": "r",
            "pass_index": 1, "wavefronts": 4, "ants": 8, "iterations": 2,
            "kernel_seconds": 1e-4, "transfer_seconds": 1e-6,
            "launch_seconds": 4e-5, "compute_cycles": 10, "memory_cycles": 5,
            "alloc_cycles": 0, "uniform_cycles": 1,
            "serialized_selection_waves": 0, "serialized_stall_waves": 0,
            "dead_ants": 0, "ready_peak": 4, "ready_capacity": 8,
        }
        aggregator.consume(dict(launch, backend="vectorized"))
        aggregator.consume(dict(launch, seq=101))  # no backend -> unknown
        text = to_openmetrics(aggregator)
        assert 'repro_kernel_seconds_total{backend="vectorized"' in text
        assert 'repro_kernel_seconds_total{backend="unknown"' in text
        assert 'pass_index="1"' in text
        assert 'repro_faults_total{fault_class="launch"}' in text
        assert lint_openmetrics(text) == []

    def test_export_is_deterministic(self, compiled):
        aggregator, records = compiled
        replay = MetricsAggregator()
        replay.consume_many(records)
        assert to_openmetrics(replay) == to_openmetrics(aggregator)


class TestLinter:
    def test_clean_document(self):
        doc = (
            "# HELP repro_x A counter.\n"
            "# TYPE repro_x counter\n"
            "repro_x_total 3\n"
            "# EOF\n"
        )
        assert lint_openmetrics(doc) == []

    def test_missing_eof(self):
        errors = lint_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")
        assert any("EOF" in e for e in errors)

    def test_counter_without_total_suffix(self):
        doc = "# TYPE repro_x counter\nrepro_x 1\n# EOF\n"
        assert any("_total" in e for e in lint_openmetrics(doc))

    def test_negative_counter(self):
        doc = "# TYPE repro_x counter\nrepro_x_total -1\n# EOF\n"
        assert any("negative" in e for e in lint_openmetrics(doc))

    def test_sample_without_type(self):
        doc = "repro_y 1\n# EOF\n"
        assert any("no preceding TYPE" in e for e in lint_openmetrics(doc))

    def test_duplicate_sample(self):
        doc = (
            "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n# EOF\n"
        )
        assert any("duplicate" in e for e in lint_openmetrics(doc))

    def test_histogram_without_inf_bucket(self):
        doc = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 2\n'
            "repro_h_sum 1.5\n"
            "repro_h_count 2\n"
            "# EOF\n"
        )
        assert any("+Inf" in e for e in lint_openmetrics(doc))

    def test_histogram_non_cumulative_buckets(self):
        doc = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            'repro_h_bucket{le="2.0"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.5\n"
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("cumulative" in e for e in lint_openmetrics(doc))

    def test_inf_bucket_count_mismatch(self):
        doc = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1.5\n"
            "repro_h_count 5\n"
            "# EOF\n"
        )
        assert any("_count" in e for e in lint_openmetrics(doc))

    def test_content_after_eof(self):
        doc = "# TYPE repro_x gauge\nrepro_x 1\n# EOF\nrepro_x 2\n"
        assert any("after # EOF" in e for e in lint_openmetrics(doc))

    def test_malformed_sample(self):
        doc = "# TYPE repro_x gauge\nnot a metric line at all !!\n# EOF\n"
        assert any("malformed" in e for e in lint_openmetrics(doc))


class TestPerfetto:
    def test_structure_and_tracks(self, compiled):
        _, records = compiled
        trace = to_perfetto(records)
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        # One thread row per region journey, each with a name metadata.
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        names = [e for e in events if e["ph"] == "M"]
        assert len(names) == len(tids)
        json.dumps(trace)  # must serialize cleanly

    def test_chaotic_journey_on_one_track(self, chaotic):
        trace = to_perfetto(chaotic)
        events = trace["traceEvents"]
        resilience = [e for e in events if e.get("cat") == "resilience"]
        assert resilience
        # The whole fault story shares one thread row (one trace).
        assert len({e["tid"] for e in resilience}) == 1
        fault_slices = [e for e in resilience if e["ph"] == "X"]
        assert fault_slices  # faults carry burned seconds as duration
        assert all(e["dur"] >= 0 for e in fault_slices)
        instants = [e for e in resilience if e["ph"] == "i"]
        assert any(e["name"].startswith("retry") for e in instants)

    def test_timeline_is_sequential_and_simulated(self, compiled):
        _, records = compiled
        events = to_perfetto(records)["traceEvents"]
        regions = [e for e in events if e.get("cat") == "region"]
        assert len(regions) >= 2
        # Region slices tile the simulated timeline without overlap.
        spans = sorted((e["ts"], e["ts"] + e["dur"]) for e in regions)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end - 1e-6

    def test_empty_records(self):
        assert to_perfetto([]) == {"traceEvents": [], "displayTimeUnit": "ms"}
