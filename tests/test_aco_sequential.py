"""Tests for the sequential two-pass ACO scheduler."""

import pytest
from hypothesis import given, settings

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams
from repro.ddg import DDG, region_bounds
from repro.heuristics import AMDMaxOccupancyScheduler
from repro.heuristics.list_scheduler import schedule_in_order
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.rp import peak_pressure, rp_cost
from repro.schedule import validate_schedule

from conftest import ddgs


class TestTwoPassStructure:
    def test_figure1_on_tiny_target(self, fig1_ddg, tiny_machine):
        scheduler = SequentialACOScheduler(tiny_machine)
        result = scheduler.schedule(fig1_ddg, seed=42)
        validate_schedule(result.schedule, fig1_ddg, tiny_machine)
        # Tiny target: occupancy boundary at 3 VGPRs; best PRP is 3.
        assert result.peak[VGPR] == 3

    def test_figure1_on_vega_minimizes_length(self, fig1_ddg, vega):
        scheduler = SequentialACOScheduler(vega)
        result = scheduler.schedule(fig1_ddg, seed=42)
        validate_schedule(result.schedule, fig1_ddg, vega)
        # On the roomy Vega table every PRP <= 24 is equal; pass 1 skips and
        # pass 2 finds the 8-cycle optimum.
        assert not result.pass1.invoked
        assert result.length == 8

    def test_pass1_skipped_when_heuristic_optimal(self, fig1_ddg, vega):
        result = SequentialACOScheduler(vega).schedule(fig1_ddg, seed=0)
        assert not result.pass1.invoked
        assert result.pass1.iterations == 0
        assert result.pass1.seconds == 0.0

    def test_result_never_worse_than_initial(self, fig1_ddg, tiny_machine):
        amd = AMDMaxOccupancyScheduler(tiny_machine)
        initial = amd.schedule(fig1_ddg)
        result = SequentialACOScheduler(tiny_machine).schedule(
            fig1_ddg, seed=3,
            initial_order=initial.order,
            reference_schedule=initial,
        )
        initial_cost = rp_cost(peak_pressure(initial), tiny_machine)
        assert result.rp_cost_value <= initial_cost

    def test_seconds_accumulate(self, fig1_ddg, tiny_machine):
        result = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=1)
        assert result.seconds == result.pass1.seconds + result.pass2.seconds
        if result.pass2.invoked:
            assert result.pass2.seconds > 0

    def test_reference_schedule_used_when_it_fits(self, fig1_ddg, vega):
        """With pass 1 skipped, the heuristic's latency-aware schedule is the
        pass-2 starting point when it meets the target."""
        amd = AMDMaxOccupancyScheduler(vega)
        reference = amd.schedule(fig1_ddg)
        result = SequentialACOScheduler(vega).schedule(
            fig1_ddg, seed=0,
            initial_order=reference.order,
            reference_schedule=reference,
        )
        assert result.pass2.initial_cost <= reference.length

    def test_termination_respects_max_iterations(self, fig1_ddg, tiny_machine):
        params = ACOParams(max_iterations=1)
        result = SequentialACOScheduler(tiny_machine, params=params).schedule(
            fig1_ddg, seed=5
        )
        assert result.pass1.iterations <= 1
        assert result.pass2.iterations <= 1

    def test_deterministic(self, fig1_ddg, tiny_machine):
        a = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=9)
        b = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=9)
        assert a.schedule == b.schedule
        assert a.seconds == b.seconds

    def test_invalid_params_rejected(self, vega):
        with pytest.raises(Exception):
            SequentialACOScheduler(vega, params=ACOParams(decay=0.0))


class TestQualityProperties:
    @given(ddgs(max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_schedule_always_legal(self, ddg):
        machine = simple_test_target()
        result = SequentialACOScheduler(machine).schedule(ddg, seed=1)
        validate_schedule(result.schedule, ddg, machine)
        assert result.peak == peak_pressure(result.schedule)

    @given(ddgs(max_size=30))
    @settings(max_examples=15, deadline=None)
    def test_length_never_exceeds_stretched_initial(self, ddg):
        """The final schedule beats (or ties) the worst-case fallback."""
        machine = amd_vega20()
        scheduler = SequentialACOScheduler(machine)
        result = scheduler.schedule(ddg, seed=2)
        bounds = region_bounds(ddg)
        assert result.length >= bounds.length

    @given(ddgs(max_size=25))
    @settings(max_examples=10, deadline=None)
    def test_pass2_never_loses_occupancy(self, ddg):
        """Pass 2's pressure constraint guarantees the final schedule's
        occupancy is at least the initial (pass-1 starting) schedule's —
        occupancy can legitimately be 0 on the tiny target when a region
        simply needs more registers than the file has, but pass 2 must
        never make it worse."""
        from repro.heuristics import LastUseCountHeuristic, order_schedule

        machine = simple_test_target()
        initial = order_schedule(ddg, heuristic=LastUseCountHeuristic())
        initial_occ = machine.occupancy_for_pressure(peak_pressure(initial))
        result = SequentialACOScheduler(machine).schedule(ddg, seed=4)
        final_occ = machine.occupancy_for_pressure(result.peak)
        assert final_occ >= initial_occ
