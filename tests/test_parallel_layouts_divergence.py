"""Tests for the device image (layouts) and the divergence policy."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import GPUParams
from repro.ddg import DDG, TransitiveClosure
from repro.machine import amd_vega20
from repro.parallel import DivergencePolicy, RegionDeviceData

from strategies import ddgs


class TestRegionDeviceData:
    def test_figure1_image(self, fig1_ddg, vega):
        data = RegionDeviceData(fig1_ddg, vega)
        assert data.num_instructions == 7
        assert data.num_registers == 7
        assert data.ready_capacity == 5  # the Section V-A tight bound
        assert data.uses.shape[1] == 2  # max two operands in figure 1
        assert data.succ_ids.shape == data.succ_lat.shape

    def test_trivial_bound_when_disabled(self, fig1_ddg, vega):
        data = RegionDeviceData(fig1_ddg, vega, tight_ready_bound=False)
        assert data.ready_capacity == 7

    def test_luts_match_tables(self, fig1_ddg, vega):
        data = RegionDeviceData(fig1_ddg, vega)
        for ci, cls in enumerate(data.classes):
            table = vega.table_for(cls)
            for pressure in (0, 1, 24, 25, 28, 29):
                if pressure < data.lut_width:
                    assert data.occ_lut[ci, pressure] == table.occupancy(pressure)
                    assert data.aprp_lut[ci, pressure] == table.aprp(pressure)

    def test_live_out_mask(self, fig1_ddg, vega):
        data = RegionDeviceData(fig1_ddg, vega)
        out_ids = [i for i in range(data.num_registers) if data.live_out_mask[i]]
        assert [str(data.registers[i]) for i in out_ids] == ["v7"]

    def test_device_arrays_nonempty(self, fig1_ddg, vega):
        data = RegionDeviceData(fig1_ddg, vega)
        arrays = data.device_arrays()
        assert len(arrays) >= 10
        assert all(np.asarray(a).nbytes >= 0 for a in arrays)

    def test_per_ant_bytes_scale_with_capacity(self, fig1_ddg, vega):
        tight = RegionDeviceData(fig1_ddg, vega, tight_ready_bound=True)
        loose = RegionDeviceData(fig1_ddg, vega, tight_ready_bound=False)
        assert loose.per_ant_state_bytes(64) > tight.per_ant_state_bytes(64)

    @given(ddgs())
    @settings(max_examples=25, deadline=None)
    def test_capacity_bounds_hold(self, ddg):
        data = RegionDeviceData(ddg, amd_vega20())
        closure = TransitiveClosure(ddg)
        assert data.ready_capacity >= min(
            ddg.num_instructions, closure.ready_list_upper_bound()
        )
        assert data.ready_capacity <= ddg.num_instructions

    @given(ddgs())
    @settings(max_examples=25, deadline=None)
    def test_operand_tables_roundtrip(self, ddg):
        data = RegionDeviceData(ddg, amd_vega20())
        for inst in ddg.region:
            uses = [data.registers[r] for r in data.uses[inst.index] if r >= 0]
            assert sorted(map(str, uses)) == sorted(map(str, inst.uses))
            defs = [data.registers[r] for r in data.defs[inst.index] if r >= 0]
            assert sorted(map(str, defs)) == sorted(map(str, inst.defs))


class TestDivergencePolicy:
    def _policy(self, **overrides):
        gpu = GPUParams(blocks=8, **overrides)
        return DivergencePolicy.from_params(gpu)

    def test_from_params(self):
        policy = self._policy()
        assert policy.num_wavefronts == 8
        assert policy.wavefront_size == 64
        assert policy.num_ants == 512

    def test_stall_mask_fraction(self):
        policy = self._policy(stall_wavefront_fraction=0.25)
        assert policy.stall_wavefront_mask().sum() == 2
        assert self._policy(stall_wavefront_fraction=0.0).stall_wavefront_mask().sum() == 0
        assert self._policy(stall_wavefront_fraction=1.0).stall_wavefront_mask().sum() == 8

    def test_stall_mask_spread(self):
        mask = self._policy(stall_wavefront_fraction=0.5).stall_wavefront_mask()
        # Evenly spread, not clustered at the front.
        assert mask.sum() == 4
        assert mask[0] and not mask[1]

    def test_heuristic_assignment_rotates(self):
        policy = self._policy(heuristic_diversity=True)
        assignment = policy.heuristic_assignment(2)
        assert set(assignment) == {0, 1}
        off = self._policy(heuristic_diversity=False).heuristic_assignment(2)
        assert set(off) == {0}

    def test_wavefront_level_draw_uniform_within_wavefront(self):
        policy = self._policy(wavefront_level_choice=True)
        draw = policy.exploit_draw(np.random.default_rng(0), q0=0.5)
        blocks = draw.reshape(8, 64)
        for row in blocks:
            assert row.all() or not row.any()

    def test_thread_level_draw_varies_within_wavefront(self):
        policy = self._policy(wavefront_level_choice=False)
        draw = policy.exploit_draw(np.random.default_rng(0), q0=0.5)
        blocks = draw.reshape(8, 64)
        assert any(0 < row.sum() < 64 for row in blocks)


class TestGPUParamsToggles:
    def test_without_memory_opts(self):
        gpu = GPUParams().without_memory_opts()
        assert not gpu.soa_layout
        assert not gpu.tight_ready_list_bound
        assert not gpu.batched_transfers
        assert gpu.wavefront_level_choice  # divergence opts untouched

    def test_without_divergence_opts(self):
        gpu = GPUParams().without_divergence_opts()
        assert not gpu.wavefront_level_choice
        assert gpu.stall_wavefront_fraction == 1.0
        assert not gpu.early_wavefront_termination
        assert not gpu.heuristic_diversity
        assert gpu.soa_layout  # memory opts untouched
