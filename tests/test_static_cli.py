"""CLI tests for ``python -m repro.analysis.static``: exit codes, formats,
baseline writing, rule selection, and the repo self-scan gate."""

import json
import os
import subprocess
import sys

from repro.analysis.static import default_target
from repro.analysis.static.cli import main

BAD = "def f(items):\n    for x in set(items):\n        pass\n"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "viz/ok.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        assert main([str(tmp_path)]) == 1
        assert "DET-002" in capsys.readouterr().out

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "viz/ok.py", "x = 1\n")
        assert main([str(tmp_path), "--select", "NOPE-999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestFormats:
    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "DET-002"

    def test_sarif_format_and_side_file(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        sarif_path = tmp_path / "out.sarif"
        assert main([str(tmp_path), "--format", "sarif", "--sarif", str(sarif_path)]) == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(sarif_path.read_text())
        assert stdout_payload == file_payload
        assert file_payload["version"] == "2.1.0"

    def test_output_file(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        out = tmp_path / "report.txt"
        assert main([str(tmp_path), "--output", str(out)]) == 1
        assert "DET-002" in out.read_text()
        assert capsys.readouterr().out == ""

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET-001", "DET-002", "RNG-101", "DIV-201", "ACC-301", "LAY-401", "SYN-001"):
            assert rule_id in out


class TestRuleSelection:
    def test_select_runs_only_chosen_rule(self, tmp_path, capsys):
        _write(
            tmp_path,
            "aco/bad.py",
            "import random\nrng = random.Random(1)\n" + BAD,
        )
        assert main([str(tmp_path), "--select", "DET-002", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"DET-002"}

    def test_ignore_drops_rule(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        assert main([str(tmp_path), "--ignore", "DET-002"]) == 0
        assert "clean" in capsys.readouterr().out


class TestBaselineFlow:
    def test_write_then_match_then_ratchet(self, tmp_path, capsys):
        _write(tmp_path, "aco/bad.py", BAD)
        baseline = tmp_path / ".repro-static-baseline.json"

        # Snapshot the debt.
        assert main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.is_file()
        capsys.readouterr()

        # Baselined scan is clean; --no-baseline resurfaces the finding.
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert main([str(tmp_path), "--no-baseline"]) == 1
        capsys.readouterr()

        # Ratchet: equal baseline passes, grown baseline fails.
        assert main(
            [str(tmp_path), "--baseline", str(baseline),
             "--assert-shrunk-from", str(baseline)]
        ) == 0
        empty = tmp_path / "empty-baseline.json"
        empty.write_text('{"version": 1, "tool": "repro.analysis.static", "findings": []}\n')
        capsys.readouterr()
        assert main(
            [str(tmp_path), "--baseline", str(baseline),
             "--assert-shrunk-from", str(empty)]
        ) == 1
        assert "baseline grew" in capsys.readouterr().err

    def test_baseline_discovered_upward(self, tmp_path, capsys):
        _write(tmp_path, "pkg/aco/bad.py", BAD)
        assert main([str(tmp_path / "pkg"), "--baseline",
                     str(tmp_path / ".repro-static-baseline.json"),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        # No --baseline flag: the file is found by walking upward.
        assert main([str(tmp_path / "pkg")]) == 0


class TestSelfScan:
    def test_repo_self_scan_is_clean(self, capsys):
        """The acceptance gate: zero unbaselined findings on src/repro."""
        assert main([default_target()]) == 0
        assert "clean" in capsys.readouterr().out

    def test_module_is_runnable(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.static", default_target()],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
