"""Tests for the per-iteration convergence traces."""

import math

from repro.aco import SequentialACOScheduler
from repro.config import GPUParams
from repro.ddg import DDG
from repro.machine import simple_test_target
from repro.parallel import ParallelACOScheduler

from conftest import make_region


class TestSequentialTrace:
    def test_length_matches_iterations(self, fig1_ddg, tiny_machine):
        result = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=42)
        for p in (result.pass1, result.pass2):
            if p.invoked:
                assert len(p.trace) == p.iterations
            else:
                assert p.trace == ()

    def test_running_minimum_reaches_final_cost(self, tiny_machine):
        ddg = DDG(make_region("reduce", 3, 30))
        result = SequentialACOScheduler(tiny_machine).schedule(ddg, seed=7)
        for p in (result.pass1, result.pass2):
            if p.invoked and p.trace:
                finite = [c for c in p.trace if math.isfinite(c)]
                if p.improved:
                    assert min(finite) == p.final_cost

    def test_trace_never_beats_final(self, tiny_machine):
        ddg = DDG(make_region("sort", 5, 25))
        result = SequentialACOScheduler(tiny_machine).schedule(ddg, seed=9)
        for p in (result.pass1, result.pass2):
            for cost in p.trace:
                assert cost >= p.final_cost


class TestParallelTrace:
    def test_trace_recorded(self, tiny_machine):
        ddg = DDG(make_region("reduce", 3, 30))
        result = ParallelACOScheduler(
            tiny_machine, gpu_params=GPUParams(blocks=2)
        ).schedule(ddg, seed=7)
        for p in (result.pass1, result.pass2):
            if p.invoked:
                assert len(p.trace) == p.iterations
                for cost in p.trace:
                    assert cost >= p.final_cost

    def test_dead_iterations_marked_infinite(self, tiny_machine):
        """Iterations where every ant died appear as inf in the trace, so
        convergence plots show the search struggling rather than lying."""
        ddg = DDG(make_region("gemm_tile", 2, 40))
        result = ParallelACOScheduler(
            tiny_machine, gpu_params=GPUParams(blocks=1)
        ).schedule(ddg, seed=3)
        # Not guaranteed to contain inf, but the representation must be valid.
        for p in (result.pass1, result.pass2):
            for cost in p.trace:
                assert cost > 0
