"""Tests for the convergence-curve renderer on a recorded trace fixture.

``tests/data/convergence_trace.jsonl`` was recorded with the telemetry
JSONL sink from two real scheduling runs (a sequential reduce region on
the tiny target, a parallel sort region on Vega 20); the renderer must
reconstruct cost-vs-iteration curves from it.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import TelemetryError
from repro.telemetry import read_trace
from repro.viz import convergence_curve, convergence_series

FIXTURE = os.path.join(os.path.dirname(__file__), "data", "convergence_trace.jsonl")


class TestConvergenceSeries:
    def test_fixture_series(self):
        series = convergence_series(FIXTURE)
        assert ("reduce_30", 1) in series
        assert ("sort_80", 2) in series
        events = series[("sort_80", 2)]
        assert len(events) == 4
        assert [e["iteration"] for e in events] == [0, 1, 2, 3]
        # best-so-far never increases
        bests = [e["best_cost"] for e in events]
        assert bests == sorted(bests, reverse=True)

    def test_filters(self):
        only = convergence_series(FIXTURE, region="sort_80", pass_index=2)
        assert set(only) == {("sort_80", 2)}
        assert convergence_series(FIXTURE, region="nope") == {}

    def test_accepts_record_list(self):
        series = convergence_series(read_trace(FIXTURE))
        assert series == convergence_series(FIXTURE)


class TestConvergenceCurve:
    def test_render_fixture(self):
        text = convergence_curve(FIXTURE)
        assert "reduce_30 pass 1" in text
        assert "sort_80 pass 2: 4 iteration(s)" in text
        assert "o" in text  # best-so-far markers
        assert text.endswith("\n")

    def test_dead_iterations_marked(self):
        # pass 2 of the fixture's reduce run converged immediately: every
        # ant died (winner_cost null), rendered as 'x'.
        text = convergence_curve(FIXTURE, region="reduce_30", pass_index=2)
        assert "x" in text

    def test_curve_descends(self):
        text = convergence_curve(FIXTURE, region="sort_80", pass_index=2)
        assert "best 88 -> 87" in text

    def test_no_match_raises(self):
        with pytest.raises(TelemetryError):
            convergence_curve(FIXTURE, region="nope")

    def test_downsampling_wide_series(self):
        records = [
            {
                "v": 1,
                "seq": i,
                "event": "iteration",
                "region": "r",
                "pass_index": 1,
                "iteration": i,
                "winner_cost": 100.0 - i * 0.5,
                "best_cost": 100.0 - i * 0.5,
            }
            for i in range(200)
        ]
        text = convergence_curve(records, width=40)
        assert "200 iteration(s)" in text
        # No rendered row is wider than the requested plot width + frame.
        for line in text.splitlines():
            if "|" in line:
                inner = line.split("|")[1]
                assert len(inner) <= 40
