"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.ddg import DDG
from repro.ir.builder import RegionBuilder, figure1_region
from repro.machine import amd_vega20, simple_test_target
from repro.suite.patterns import PATTERN_NAMES, pattern_region


@pytest.fixture
def fig1_region():
    return figure1_region()


@pytest.fixture
def fig1_ddg(fig1_region):
    return DDG(fig1_region)


@pytest.fixture
def vega():
    return amd_vega20()


@pytest.fixture
def tiny_machine():
    return simple_test_target()


@pytest.fixture
def chain_region():
    """A pure dependence chain: a -> b -> c -> d with latency-2 ops."""
    b = RegionBuilder("chain")
    b.inst("op2", defs=["v0"])
    b.inst("op2", defs=["v1"], uses=["v0"])
    b.inst("op2", defs=["v2"], uses=["v1"])
    b.inst("op2", defs=["v3"], uses=["v2"])
    return b.live_out("v3").build()


@pytest.fixture
def wide_region():
    """Four independent loads feeding one consumer (a pressure spike)."""
    b = RegionBuilder("wide")
    for i in range(4):
        b.inst("global_load", defs=["v%d" % i])
    b.inst("v_add", defs=["v4"], uses=["v0", "v1"])
    b.inst("v_add", defs=["v5"], uses=["v2", "v3"])
    b.inst("v_add", defs=["v6"], uses=["v4", "v5"])
    return b.live_out("v6").build()


def make_region(pattern: str, seed: int, size: int):
    """Deterministic generated region (used by strategies and tests)."""
    return pattern_region(pattern, random.Random(seed), size)


@st.composite
def regions(draw, min_size: int = 2, max_size: int = 40):
    """Hypothesis strategy: a deterministic generated region."""
    pattern = draw(st.sampled_from(PATTERN_NAMES))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    return make_region(pattern, seed, size)


@st.composite
def ddgs(draw, min_size: int = 2, max_size: int = 40):
    """Hypothesis strategy: the DDG of a generated region."""
    return DDG(draw(regions(min_size=min_size, max_size=max_size)))
