"""Shared fixtures for the test suite.

The hypothesis strategies live in ``tests/strategies.py``; the re-exports
at the bottom keep ``from conftest import ddgs`` working.
"""

from __future__ import annotations

import pytest

from repro.ddg import DDG
from repro.ir.builder import RegionBuilder, figure1_region
from repro.machine import amd_vega20, simple_test_target
from strategies import ddgs, make_region, medium_regions, regions  # noqa: F401

__all__ = ["ddgs", "make_region", "medium_regions", "regions"]


def pytest_addoption(parser):
    parser.addoption(
        "--backend-pairs",
        action="store",
        default="loop:vectorized",
        help="comma-separated backend pairs the differential suite compares "
        "for bit-identical schedules, each 'A:B' with A,B in {loop, "
        "vectorized}; 'X:X' checks one backend against itself "
        "(determinism), e.g. --backend-pairs vectorized:vectorized",
    )


def pytest_generate_tests(metafunc):
    if "backend_pair" in metafunc.fixturenames:
        raw = metafunc.config.getoption("--backend-pairs")
        pairs = [tuple(p.split(":", 1)) for p in raw.split(",") if p]
        metafunc.parametrize(
            "backend_pair", pairs, ids=["-vs-".join(p) for p in pairs]
        )


@pytest.fixture
def fig1_region():
    return figure1_region()


@pytest.fixture
def fig1_ddg(fig1_region):
    return DDG(fig1_region)


@pytest.fixture
def vega():
    return amd_vega20()


@pytest.fixture
def tiny_machine():
    return simple_test_target()


@pytest.fixture
def chain_region():
    """A pure dependence chain: a -> b -> c -> d with latency-2 ops."""
    b = RegionBuilder("chain")
    b.inst("op2", defs=["v0"])
    b.inst("op2", defs=["v1"], uses=["v0"])
    b.inst("op2", defs=["v2"], uses=["v1"])
    b.inst("op2", defs=["v3"], uses=["v2"])
    return b.live_out("v3").build()


@pytest.fixture
def wide_region():
    """Four independent loads feeding one consumer (a pressure spike)."""
    b = RegionBuilder("wide")
    for i in range(4):
        b.inst("global_load", defs=["v%d" % i])
    b.inst("v_add", defs=["v4"], uses=["v0", "v1"])
    b.inst("v_add", defs=["v5"], uses=["v2", "v3"])
    b.inst("v_add", defs=["v6"], uses=["v4", "v5"])
    return b.live_out("v6").build()
