"""Tests for multi-region batch scheduling (the Section VII extension)."""

import pytest

from repro.config import GPUParams
from repro.ddg import DDG
from repro.errors import GPUSimError
from repro.machine import amd_vega20
from repro.parallel import BatchItem, MultiRegionScheduler
from repro.rp import peak_pressure
from repro.schedule import validate_schedule

from conftest import make_region


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


def _items(count, size=30, pattern="reduce"):
    return [
        BatchItem(ddg=DDG(make_region(pattern, seed, size)), seed=seed)
        for seed in range(count)
    ]


class TestPartitioning:
    def test_every_region_gets_a_block(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=8))
        items = [
            BatchItem(ddg=DDG(make_region("scan", s, size)))
            for s, size in enumerate([10, 80, 10, 10])
        ]
        blocks = scheduler._partition_blocks(items)
        assert sum(blocks) == 8
        assert all(b >= 1 for b in blocks)
        assert blocks[1] == max(blocks)  # the big region gets the most

    def test_too_many_regions_rejected(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=2))
        with pytest.raises(GPUSimError):
            scheduler._partition_blocks(_items(3))

    def test_empty_batch_rejected(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=4))
        with pytest.raises(GPUSimError):
            scheduler.schedule_batch([])


class TestBatchScheduling:
    def test_schedules_are_legal(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        items = _items(3, size=25)
        batch = scheduler.schedule_batch(items)
        assert len(batch.results) == 3
        for item, result in zip(items, batch.results):
            validate_schedule(result.schedule, item.ddg, machine)
            assert result.peak == peak_pressure(result.schedule)

    def test_amortization_beats_individual_launches(self, machine):
        """The whole point: one launch for N regions is faster than N
        launches, when ACO actually runs."""
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        batch = scheduler.schedule_batch(_items(6, size=30))
        if batch.unbatched_seconds > 0:
            assert batch.seconds < batch.unbatched_seconds
            assert batch.amortization_speedup > 1.5

    def test_noop_batch_costs_nothing(self, machine):
        """Regions whose heuristics are optimal never launch a kernel."""
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=4))
        items = [BatchItem(ddg=DDG(make_region("scan", 1, 4)))]
        batch = scheduler.schedule_batch(items)
        if all(
            not r.pass1.invoked and not r.pass2.invoked for r in batch.results
        ):
            assert batch.seconds == 0.0

    def test_deterministic(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        a = scheduler.schedule_batch(_items(3))
        b = scheduler.schedule_batch(_items(3))
        assert a.seconds == b.seconds
        for ra, rb in zip(a.results, b.results):
            assert ra.schedule == rb.schedule


class TestPerRegionProvenance:
    def test_attempts_and_backends_on_the_clean_path(self, machine):
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        batch = scheduler.schedule_batch(_items(3, size=25))
        assert batch.attempts == (1, 1, 1)
        backend = scheduler._region_scheduler(blocks=2).backend
        assert batch.final_backends == (backend,) * 3
        assert batch.retried_regions == 0

    def test_run_slot_is_pure_per_region(self, machine):
        """The contract the fleet layer rests on: a slot's outcome depends
        only on (item, blocks), not on when or where it runs."""
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        item = _items(1, size=25)[0]
        a = scheduler.run_slot(item, 2)
        b = scheduler.run_slot(item, 2)
        assert a.result.schedule == b.result.schedule
        assert a.seconds == b.seconds
        assert (a.attempts, a.final_backend) == (b.attempts, b.final_backend)


class TestFleetDelegation:
    def test_fleet_param_shards_and_stays_bit_identical(self, machine):
        from repro.config import FleetParams

        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        single = scheduler.schedule_batch(_items(4, size=25))
        sharded = scheduler.schedule_batch(
            _items(4, size=25), fleet=FleetParams(num_shards=2)
        )
        assert sharded.seconds == single.seconds
        assert sharded.attempts == single.attempts
        assert sharded.final_backends == single.final_backends
        for ra, rb in zip(single.results, sharded.results):
            assert ra.schedule == rb.schedule

    def test_repro_shards_env_delegates(self, machine, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        scheduler = MultiRegionScheduler(machine, gpu_params=GPUParams(blocks=6))
        sharded = scheduler.schedule_batch(_items(3, size=25))
        monkeypatch.delenv("REPRO_SHARDS")
        single = scheduler.schedule_batch(_items(3, size=25))
        assert sharded.seconds == single.seconds
        for ra, rb in zip(single.results, sharded.results):
            assert ra.schedule == rb.schedule
