"""Fault-injection tests for the independent schedule verifier.

Every test here seeds a *specific* defect into an otherwise-correct
schedule (or scheduler claim) and asserts the verifier reports the exact
violation code. A verifier that only ever sees correct schedules proves
nothing.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aco import SequentialACOScheduler
from repro.analysis import (
    classify_stalls,
    recompute_peak_pressure,
    verify_aco_result,
    verify_order,
    verify_schedule,
)
from repro.config import ACOParams
from repro.ddg import DDG
from repro.errors import VerificationError
from repro.heuristics import CriticalPathHeuristic, list_schedule
from repro.ir.builder import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.rp import peak_pressure, rp_cost
from repro.schedule import Schedule

from conftest import ddgs


class Forged:
    """A duck-typed stand-in for Schedule, for feeding corrupt state."""

    def __init__(self, region, cycles, order=None):
        self.region = region
        self.cycles = tuple(cycles)
        if order is not None:
            self.order = tuple(order)


# -- the independent liveness recomputation ----------------------------------


class TestRecomputePeakPressure:
    def test_matches_tracker_on_figure1(self, fig1_region):
        order = tuple(range(7))
        schedule = Schedule.from_order(fig1_region, order)
        assert recompute_peak_pressure(fig1_region, order) == peak_pressure(schedule)

    @given(ddgs(max_size=25), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_bit_matches_tracker_on_random_orders(self, ddg, seed):
        """The interval recomputation must agree with the incremental
        tracker on *any* order, legal or not (liveness only needs an order)."""
        order = list(range(ddg.num_instructions))
        random.Random(seed).shuffle(order)
        schedule = Schedule.from_order(ddg.region, order)
        assert recompute_peak_pressure(ddg.region, order) == peak_pressure(schedule)


# -- clean schedules pass -----------------------------------------------------


class TestCleanSchedules:
    def test_list_schedule_verifies(self, fig1_ddg, vega):
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        report = verify_schedule(schedule, fig1_ddg, vega)
        assert report.ok
        assert report.checks > 10
        report.raise_if_failed()  # no-op

    @given(ddgs(max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_generated_regions_verify(self, ddg):
        machine = amd_vega20()
        schedule = list_schedule(ddg, machine, heuristic=CriticalPathHeuristic())
        peak = peak_pressure(schedule)
        report = verify_schedule(
            schedule,
            ddg,
            machine,
            expected_peak=peak,
            expected_rp_cost=rp_cost(peak, machine),
        )
        assert report.ok, report.violations

    def test_aco_result_verifies(self, fig1_ddg, tiny_machine):
        scheduler = SequentialACOScheduler(
            tiny_machine, params=ACOParams(max_iterations=4)
        )
        result = scheduler.schedule(fig1_ddg, seed=1)
        report = verify_aco_result(result, fig1_ddg, tiny_machine)
        assert report.ok, report.violations
        assert "recertified_peak" in report.stats


# -- seeded faults, one per mutation -----------------------------------------


class TestFaultInjection:
    def test_edge_violating_swap(self, fig1_ddg, vega):
        """Mutation 1: swap a dependent pair's cycles."""
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        cycles = list(schedule.cycles)
        by_label = {i.label: i.index for i in fig1_ddg.region}
        a, e = by_label["A"], by_label["E"]  # A -> E is a flow dependence
        cycles[a], cycles[e] = cycles[e], cycles[a]
        report = verify_schedule(Forged(fig1_ddg.region, cycles), fig1_ddg, vega)
        assert "latency" in report.codes()
        with pytest.raises(VerificationError):
            report.raise_if_failed()

    def test_dropped_instruction(self, fig1_ddg, vega):
        """Mutation 2: a schedule that simply lost an instruction."""
        report = verify_schedule(
            Forged(fig1_ddg.region, range(6)), fig1_ddg, vega
        )
        assert "incomplete" in report.codes()

    def test_duplicated_issue(self, fig1_ddg, vega):
        """Mutation 3: one instruction issued twice in the claimed order."""
        report = verify_schedule(
            Forged(fig1_ddg.region, range(7), order=(0, 0, 1, 2, 3, 4, 5)),
            fig1_ddg,
            vega,
        )
        assert "duplicate-issue" in report.codes()

    def test_latency_compression(self, chain_region, vega):
        """Mutation 4: stalls squeezed out of a latency chain."""
        ddg = DDG(chain_region)
        report = verify_schedule(Forged(chain_region, range(4)), ddg, vega)
        assert "latency" in report.codes()

    def test_aprp_target_overshoot(self, wide_region, vega):
        """Mutation 5: a pass-2 schedule exceeding the pass-1 target."""
        ddg = DDG(wide_region)
        schedule = list_schedule(ddg, vega, heuristic=CriticalPathHeuristic())
        report = verify_schedule(schedule, ddg, vega, target_aprp={VGPR: 1})
        assert "aprp-target" in report.codes()

    def test_claimed_peak_tamper(self, fig1_ddg, tiny_machine):
        """Mutation 6: the scheduler lies about its peak pressure."""
        scheduler = SequentialACOScheduler(
            tiny_machine, params=ACOParams(max_iterations=3)
        )
        result = scheduler.schedule(fig1_ddg, seed=2)
        result.peak = {VGPR: 1}  # nobody schedules Figure 1 in 1 VGPR
        report = verify_aco_result(result, fig1_ddg, tiny_machine)
        assert "claimed-peak" in report.codes()

    def test_claimed_cost_tamper(self, fig1_ddg, tiny_machine):
        """Mutation 7: the scheduler lies about its RP cost."""
        scheduler = SequentialACOScheduler(
            tiny_machine, params=ACOParams(max_iterations=3)
        )
        result = scheduler.schedule(fig1_ddg, seed=2)
        result.rp_cost_value += 1
        report = verify_aco_result(result, fig1_ddg, tiny_machine)
        assert "claimed-cost" in report.codes()

    def test_issue_width_violation(self, vega):
        """Mutation 8: two independent instructions crammed into one cycle."""
        b = RegionBuilder("pair")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"])
        region = b.live_out("v0", "v1").build()
        ddg = DDG(region)
        report = verify_schedule(Forged(region, [0, 0]), ddg, vega)
        assert "issue-width" in report.codes()

    def test_region_mismatch(self, fig1_ddg, chain_region, vega):
        """Mutation 9: a schedule forged against a different region."""
        report = verify_schedule(
            Forged(chain_region, range(7)), fig1_ddg, vega
        )
        assert "region-mismatch" in report.codes()

    def test_negative_cycle(self, fig1_ddg, vega):
        """Mutation 10: a negative cycle smuggled past Schedule's guards."""
        report = verify_schedule(
            Forged(fig1_ddg.region, [-1, 0, 1, 2, 3, 4, 5]), fig1_ddg, vega
        )
        assert "negative-cycle" in report.codes()

    def test_length_claim_tamper(self, fig1_ddg, vega):
        """Mutation 11: the claimed length disagrees with the cycles."""
        forged = Forged(fig1_ddg.region, range(7), order=range(7))
        forged.length = 3
        report = verify_schedule(forged, fig1_ddg, vega)
        assert "length-mismatch" in report.codes()


# -- order verification -------------------------------------------------------


class TestVerifyOrder:
    def test_legal_order_passes(self, fig1_ddg):
        assert verify_order(fig1_ddg, range(7)).ok

    def test_dependence_swap_caught(self, fig1_ddg):
        by_label = {i.label: i.index for i in fig1_ddg.region}
        order = list(range(7))
        a, e = order.index(by_label["A"]), order.index(by_label["E"])
        order[a], order[e] = order[e], order[a]
        report = verify_order(fig1_ddg, order)
        assert "order-dependence" in report.codes()

    def test_missing_and_alien(self, fig1_ddg):
        report = verify_order(fig1_ddg, [0, 1, 2, 3, 4, 5, 99])
        codes = report.codes()
        assert "missing-instruction" in codes
        assert "alien-instruction" in codes


# -- stall classification -----------------------------------------------------


class TestClassifyStalls:
    def test_chain_stalls_split(self, chain_region):
        """Cycles [0,3,5,7] on a lat-2 chain: cycle 2 could have issued
        instruction 1 (optional); cycles 1, 4, 6 could not (necessary)."""
        ddg = DDG(chain_region)
        stalls = classify_stalls(Forged(chain_region, [0, 3, 5, 7]), ddg)
        assert stalls == {"necessary_stalls": 3, "optional_stalls": 1}

    def test_compact_schedule_has_no_stalls(self, fig1_region, fig1_ddg):
        stalls = classify_stalls(Forged(fig1_region, range(7)), fig1_ddg)
        assert stalls == {"necessary_stalls": 0, "optional_stalls": 0}

    def test_minimal_chain_schedule_all_necessary(self, chain_region):
        ddg = DDG(chain_region)
        stalls = classify_stalls(Forged(chain_region, [0, 2, 4, 6]), ddg)
        assert stalls == {"necessary_stalls": 3, "optional_stalls": 0}


# -- scheduler-integrated verification ---------------------------------------


class TestSchedulerVerifyFlag:
    def test_sequential_verify_clean(self, fig1_ddg, tiny_machine):
        scheduler = SequentialACOScheduler(
            tiny_machine, params=ACOParams(max_iterations=3), verify=True
        )
        assert scheduler.verify_enabled
        result = scheduler.schedule(fig1_ddg, seed=0)
        assert sorted(result.schedule.order) == list(range(7))

    def test_verify_defaults_off(self, tiny_machine):
        assert not SequentialACOScheduler(tiny_machine).verify_enabled

    def test_env_var_enables(self, tiny_machine, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert SequentialACOScheduler(tiny_machine).verify_enabled
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not SequentialACOScheduler(tiny_machine).verify_enabled
