"""Tests for the textual region format (printer + parser round trip)."""

import pytest
from hypothesis import given, settings

from repro.errors import ParseError
from repro.ir import format_region, format_schedule, parse_region
from repro.ir.builder import figure1_region
from repro.schedule import Schedule

from conftest import regions


class TestFormatRegion:
    def test_contains_header_and_end(self, fig1_region):
        text = format_region(fig1_region)
        assert text.startswith("region figure1\n")
        assert text.rstrip().endswith("end")

    def test_live_out_line(self, fig1_region):
        assert "live_out: v7" in format_region(fig1_region)

    def test_labels_preserved(self, fig1_region):
        text = format_region(fig1_region)
        assert "A: op3 defs(v1)" in text  # lat 3 is op3's default, not printed
        assert "D: op1 defs(v4) lat=4" in text  # overridden latency is printed


class TestParseRegion:
    def test_roundtrip_figure1(self, fig1_region):
        assert parse_region(format_region(fig1_region)) == fig1_region

    def test_comments_and_blanks_ignored(self):
        text = """
        region t
        # a comment
        a: op1 defs(v0)   # trailing comment

        end
        """
        region = parse_region(text)
        assert region.size == 1
        assert region[0].name == "a"

    def test_generic_labels_not_kept_as_names(self):
        region = parse_region("region t\ni0: op1 defs(v0)\nend\n")
        assert region[0].name == ""
        assert region[0].label == "i0"

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "region t\nend",  # no instructions
            "x: op1\nend",  # missing header
            "region t\na: op1",  # missing end
            "region t\na: op1\nend\nmore",  # trailing content
            "region t\na: nosuchop defs(v0)\nend",
            "region t\na: op1 defs(zz)\nend",
            "region \nend",
        ],
    )
    def test_errors(self, text):
        with pytest.raises(ParseError):
            parse_region(text)

    def test_error_carries_line_number(self):
        try:
            parse_region("region t\n???\nend\n")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")

    def test_live_in_parsed(self):
        text = "region t\nlive_in: s4\na: op1 defs(v0) uses(s4)\nend\n"
        region = parse_region(text)
        assert str(sorted(region.live_in)[0]) == "s4"

    @given(regions(max_size=25))
    @settings(max_examples=40)
    def test_roundtrip_property(self, region):
        assert parse_region(format_region(region)) == region


class TestFormatSchedule:
    def test_shows_stalls(self, fig1_region):
        # A at 0, B at 1, rest packed late with a gap at cycle 2.
        schedule = Schedule(fig1_region, [0, 1, 3, 4, 5, 9, 10])
        text = format_schedule(schedule)
        assert "cycle   2: Stall" in text
        assert "length 11" in text

    def test_lists_instruction_labels(self, fig1_region):
        schedule = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        text = format_schedule(schedule)
        assert "cycle   0: A" in text
        assert "cycle   6: G" in text
