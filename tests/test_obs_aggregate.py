"""Tests for the metrics aggregation engine: buckets, quantiles, snapshots."""

import json
import math

import pytest

from repro.config import ACOParams, FilterParams, SuiteParams
from repro.machine import amd_vega20
from repro.obs import AggregatingSink, ExpHistogram, MetricsAggregator
from repro.obs.aggregate import (
    _HALF_STEP,
    _SUBSTEPS,
    MODELED_EMIT_SECONDS,
    MODELED_UPDATE_SECONDS,
    QUANTILE_ERROR_BOUND,
)
from repro.obs.slo import SLOReport
from repro.pipeline import CompilePipeline
from repro.aco import SequentialACOScheduler
from repro.suite import generate_suite
from repro.telemetry import MemorySink, Telemetry


class TestBucketBoundaries:
    def test_bounds_are_exact_substep_scalings(self):
        hist = ExpHistogram(lo_octave=-2, hi_octave=2)
        expected = [
            m * 2.0 ** octave for octave in range(-2, 2) for m in _SUBSTEPS
        ]
        assert list(hist.bounds) == expected
        # Power-of-two scaling is exact: octave 0 holds the raw mantissas.
        assert hist.bounds[8:12] == _SUBSTEPS

    def test_bounds_grow_by_quarter_octave(self):
        hist = ExpHistogram()
        ratios = [
            hist.bounds[i + 1] / hist.bounds[i] for i in range(len(hist.bounds) - 1)
        ]
        step = 2.0 ** 0.25
        assert all(abs(r - step) < 1e-12 for r in ratios)

    def test_value_on_boundary_lands_in_its_bucket(self):
        hist = ExpHistogram()
        for bound in (hist.bounds[0], hist.bounds[17], hist.bounds[-1]):
            hist.counts.clear()
            hist.observe(bound)
            index = next(iter(hist.counts))
            assert hist.bounds[index] == bound  # inclusive upper bound

    def test_value_just_above_boundary_moves_up(self):
        hist = ExpHistogram()
        bound = hist.bounds[17]
        hist.observe(bound * (1.0 + 1e-9))
        index = next(iter(hist.counts))
        assert index == 18

    def test_zero_negative_overflow_nonfinite(self):
        hist = ExpHistogram(lo_octave=-2, hi_octave=2)
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(1e12)  # above the last bound
        hist.observe(float("nan"))
        hist.observe(float("inf"))
        assert hist.zeros == 2
        assert hist.overflow == 3
        assert hist.count == 5
        assert not hist.counts  # no ordinary bucket occupied

    def test_empty_octave_range_rejected(self):
        with pytest.raises(ValueError):
            ExpHistogram(lo_octave=3, hi_octave=3)


class TestQuantiles:
    def test_relative_error_bound_holds(self):
        """The advertised guarantee: in-range quantile estimates are within
        QUANTILE_ERROR_BOUND (one geometric half-step) of the true value."""
        hist = ExpHistogram()
        # ~8 decades, well inside the bucket range (no overflow involved).
        values = [1.7e-6 * (1.09 ** i) for i in range(200)]
        for v in values:
            hist.observe(v)
        assert hist.overflow == 0
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            true = ordered[max(0, int(math.ceil(q * len(ordered))) - 1)]
            estimate = hist.quantile(q)
            assert abs(estimate - true) / true <= QUANTILE_ERROR_BOUND + 1e-12

    def test_quantile_clamped_to_observed_range(self):
        hist = ExpHistogram()
        hist.observe(3.0)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 3.0

    def test_empty_histogram(self):
        assert ExpHistogram().quantile(0.5) == 0.0

    def test_zeros_dominate_low_quantiles(self):
        hist = ExpHistogram()
        for _ in range(9):
            hist.observe(0.0)
        hist.observe(5.0)
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 5.0

    def test_half_step_literal(self):
        assert _HALF_STEP == pytest.approx(2.0 ** 0.125, rel=1e-15)
        assert QUANTILE_ERROR_BOUND == _HALF_STEP - 1.0


def _compile_to_sink(seed_params=None):
    machine = amd_vega20()
    suite = generate_suite(
        seed_params
        or SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=3),
        max_region_size=60,
    )
    aggregator = MetricsAggregator()
    memory = MemorySink()
    from repro.telemetry import TeeSink

    tele = Telemetry(TeeSink(memory, AggregatingSink(aggregator)))
    pipeline = CompilePipeline(
        machine,
        scheduler=SequentialACOScheduler(
            machine, params=ACOParams(max_iterations=8), telemetry=tele
        ),
        filters=FilterParams(cycle_threshold=0),
        telemetry=tele,
    )
    pipeline.compile_suite(suite)
    return aggregator, memory.records


class TestAggregator:
    def test_snapshot_byte_stable_across_identical_runs(self):
        """Two identical seeded runs must serialize to identical bytes."""
        first, _ = _compile_to_sink()
        second, _ = _compile_to_sink()
        assert first.snapshot_json() == second.snapshot_json()
        assert first.snapshot_json().encode() == second.snapshot_json().encode()

    def test_offline_replay_equals_live_aggregation(self):
        live, records = _compile_to_sink()
        replayed = MetricsAggregator()
        replayed.consume_many(records)
        assert replayed.snapshot_json() == live.snapshot_json()

    def test_core_metrics_present(self):
        aggregator, _ = _compile_to_sink()
        snap = aggregator.snapshot()
        assert snap["counters"]["regions.total"] > 0
        assert "region.latency_seconds" in snap["histograms"]
        q = snap["quantiles"]["region.latency_seconds"]
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] <= q["p95"] <= q["p99"]
        assert snap["throughput"]["regions_per_simulated_second"] > 0
        assert snap["slo"]["regions"] == snap["counters"]["regions.total"]

    def test_kernel_seconds_keyed_by_pass_and_backend(self):
        aggregator = MetricsAggregator()
        base = {
            "v": 1, "seq": 0, "event": "kernel_launch", "region": "r",
            "pass_index": 1, "wavefronts": 4, "ants": 8, "iterations": 2,
            "kernel_seconds": 1e-4, "transfer_seconds": 1e-6,
            "launch_seconds": 4e-5, "compute_cycles": 10, "memory_cycles": 5,
            "alloc_cycles": 0, "uniform_cycles": 1,
            "serialized_selection_waves": 0, "serialized_stall_waves": 0,
            "dead_ants": 0, "ready_peak": 4, "ready_capacity": 8,
        }
        aggregator.consume(dict(base, backend="vectorized"))
        aggregator.consume(dict(base))  # no backend field -> unknown
        assert aggregator.counters["kernel.seconds.pass1.vectorized"] == 1e-4
        assert aggregator.counters["kernel.seconds.pass1.unknown"] == 1e-4

    def test_slo_counts_degraded_and_deadline_regions(self):
        aggregator = MetricsAggregator(slo_target=0.9)
        region_end = {
            "v": 1, "seq": 0, "event": "region_end", "region": "a", "size": 10,
            "decision": "degraded", "aco_invoked": True,
            "heuristic_length": 10, "final_length": 10,
            "heuristic_occupancy": 4, "final_occupancy": 4,
            "scheduling_seconds": 1e-4,
        }
        aggregator.consume(region_end)
        aggregator.consume(dict(region_end, region="b", decision="aco_applied"))
        aggregator.consume({
            "v": 1, "seq": 2, "event": "deadline", "region": "b",
            "pass_index": 2, "deadline_seconds": 1e-3, "spent_seconds": 9e-4,
        })
        report = aggregator.slo_report()
        assert report.regions == 2
        assert report.violations == 2  # a degraded, b deadline-tripped
        assert not report.healthy
        assert aggregator.counters["resilience.deadline_trips"] == 1
        hist = aggregator.histograms["deadline.budget_consumed_fraction"]
        assert hist.count == 1

    def test_same_region_name_different_traces_stay_separate(self):
        """Two seeded recompiles of one region are two SLO identities when
        trace-stamped — the merge-conflation bug the trace id fixes."""
        aggregator = MetricsAggregator()
        base = {
            "v": 1, "seq": 0, "event": "region_end", "region": "r", "size": 10,
            "decision": "aco_applied", "aco_invoked": True,
            "heuristic_length": 10, "final_length": 9,
            "heuristic_occupancy": 4, "final_occupancy": 4,
            "scheduling_seconds": 1e-4,
        }
        aggregator.consume(dict(base, trace_id="aaaa", span_id="1111"))
        aggregator.consume(dict(base, trace_id="bbbb", span_id="2222"))
        assert aggregator.regions == 2
        assert aggregator.traces == 2

    def test_unknown_events_counted_not_fatal(self):
        aggregator = MetricsAggregator()
        aggregator.consume({"event": "brand_new_event_type"})
        assert aggregator.events == 1
        assert not aggregator.counters

    def test_modeled_overhead_under_design_target(self):
        aggregator, _ = _compile_to_sink()
        pct = aggregator.modeled_overhead_pct()
        assert 0.0 < pct < 5.0
        expected = 100.0 * aggregator.updates * MODELED_UPDATE_SECONDS / (
            aggregator.events * MODELED_EMIT_SECONDS
        )
        assert pct == expected

    def test_snapshot_json_round_trips(self):
        aggregator, _ = _compile_to_sink()
        text = aggregator.snapshot_json()
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed["snapshot_schema"] == 1

    def test_bad_slo_target_rejected(self):
        with pytest.raises(ValueError):
            MetricsAggregator(slo_target=0.0)
        with pytest.raises(ValueError):
            MetricsAggregator(slo_target=1.5)


class TestSLOReport:
    def test_compliance_and_burn(self):
        report = SLOReport(target=0.99, regions=100, violations=2)
        assert report.compliance == pytest.approx(0.98)
        assert report.error_budget == pytest.approx(0.01)
        assert report.budget_consumed == pytest.approx(2.0)
        assert report.burn_rate == pytest.approx(2.0)
        assert not report.healthy

    def test_empty_run_is_healthy(self):
        report = SLOReport(target=0.99, regions=0, violations=0)
        assert report.compliance == 1.0
        assert report.budget_consumed == 0.0
        assert report.healthy

    def test_as_dict_is_plain_and_serializable(self):
        d = SLOReport(target=0.99, regions=10, violations=0).as_dict()
        assert d["healthy"] is True
        json.dumps(d)  # must be serializable as-is
