"""Optimality cross-check: ACO and the heuristic vs. exact certificates.

On regions small enough for branch-and-bound (≤ 12 instructions), the
exact solvers produce true optima. Every scheduler must respect them:
no result beats the floor, the heuristic lands at or above it, and the
ACO search — under both strategies — lands ON it for the pinned seeds
(these regions are tiny; a search that misses them is broken, not
unlucky). Every exact schedule must itself be dependence- and
latency-legal.
"""

from __future__ import annotations

import pytest

from repro.ddg import DDG
from repro.exact import (
    CROSSCHECK_MAX_INSTRUCTIONS,
    ExactLimits,
    crosscheck,
    min_length_schedule,
    min_pressure_order,
    min_register_order,
)
from repro.exact.bnb import ExactSolverError
from repro.ir.builder import figure1_region
from repro.machine import amd_vega20
from repro.rp.liveness import peak_pressure
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate_schedule
from repro.suite.hostile import hostile_region
from strategies import make_region

#: Pinned small regions: the paper's running example plus one region per
#: generator family, all within the cross-check size budget.
SMALL_REGIONS = [
    ("figure1", lambda: figure1_region()),
    ("cliff10", lambda: hostile_region("pressure_cliff", seed=1, size=10)),
    ("chain9", lambda: hostile_region("long_chain", seed=2, size=9)),
    ("fanout12", lambda: hostile_region("fanout", seed=3, size=12)),
    ("reduce11", lambda: make_region("reduce", 5, 11)),
    ("sort10", lambda: make_region("sort", 9, 10)),
]

MACHINE = amd_vega20()


@pytest.fixture(params=SMALL_REGIONS, ids=lambda spec: spec[0])
def report(request):
    ddg = DDG(request.param[1]())
    assert ddg.num_instructions <= CROSSCHECK_MAX_INSTRUCTIONS
    return ddg, crosscheck(ddg, MACHINE, strategies=("as", "mmas"), seed=3)


class TestFloors:
    def test_no_scheduler_beats_the_exact_optimum(self, report):
        _, rep = report
        assert rep.heuristic_rp_cost >= rep.optimal_rp_cost
        for outcome in rep.outcomes.values():
            assert outcome.rp_cost >= rep.optimal_rp_cost

    def test_aco_hits_the_optimum_on_pinned_seeds(self, report):
        _, rep = report
        for outcome in rep.outcomes.values():
            assert outcome.rp_cost == rep.optimal_rp_cost, (
                "%s landed at %d, optimum is %d (gap %.3f)"
                % (outcome.strategy, outcome.rp_cost, rep.optimal_rp_cost, outcome.rp_gap)
            )
            assert outcome.within(1.0)

    def test_min_register_floor_holds_for_every_order(self, report):
        ddg, rep = report
        # The min-register count bounds every legal order's live peak —
        # including the APRP-optimal order and every ACO best order.
        peak = peak_pressure(Schedule.from_order(ddg.region, rep.optimal_order))
        assert sum(peak.values()) >= rep.min_register_count

    def test_exact_schedules_are_legal(self, report):
        ddg, rep = report
        # The pass-2 schedule is fully latency-legal; the pass-1 orders are
        # back-to-back issue sequences, legal up to program order only.
        validate_schedule(rep.optimal_schedule, ddg)
        order_schedule = Schedule.from_order(ddg.region, rep.optimal_order)
        validate_schedule(order_schedule, ddg, respect_latencies=False)
        minreg_schedule = Schedule.from_order(ddg.region, rep.min_register_order)
        validate_schedule(minreg_schedule, ddg, respect_latencies=False)

    def test_optimal_length_bounds_pass2(self, report):
        _, rep = report
        # The exact min length is computed under the optimal order's own
        # pressure target, so it bounds any search honouring that target.
        assert rep.optimal_length >= 1
        assert rep.optimal_length <= rep.heuristic_length or rep.heuristic_length > 0


class TestSolverContracts:
    def test_min_register_matches_known_chain(self):
        # A pure serial chain holds one value live at a time: each value
        # dies at its single use, right as the next one is defined.
        ddg = DDG(hostile_region("long_chain", seed=0, size=8))
        _order, count = min_register_order(ddg)
        assert count == 1

    def test_min_register_leq_any_topological_order(self):
        ddg = DDG(make_region("stencil", 4, 10))
        _order, count = min_register_order(ddg)
        naive = peak_pressure(
            Schedule.from_order(ddg.region, tuple(range(ddg.num_instructions)))
        )
        assert count <= sum(naive.values())

    def test_size_limit_is_enforced(self):
        ddg = DDG(make_region("transform", 0, 20))
        with pytest.raises(ExactSolverError):
            crosscheck(ddg, MACHINE)
        with pytest.raises(ExactSolverError):
            min_register_order(ddg, ExactLimits(max_instructions=12))

    def test_length_solver_agrees_with_pressure_solver_region(self):
        ddg = DDG(figure1_region())
        order, cost = min_pressure_order(ddg, MACHINE)
        assert sorted(order) == list(range(ddg.num_instructions))
        peak = peak_pressure(Schedule.from_order(ddg.region, order))
        schedule = min_length_schedule(
            ddg, MACHINE, target_pressure=MACHINE.aprp(peak)
        )
        validate_schedule(schedule, ddg)
        assert cost >= 0
