"""Tests for repro.ddg.graph."""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG
from repro.ddg.graph import DepKind
from repro.errors import DDGError
from repro.ir.builder import RegionBuilder

from strategies import ddgs


def _labels(region, pairs):
    return {(region[a].label, region[b].label) for a, b in pairs}


class TestFlowDependences:
    def test_figure1_edges(self, fig1_ddg):
        region = fig1_ddg.region
        edges = {(e.src, e.dst) for e in fig1_ddg.edges}
        named = _labels(region, edges)
        assert named == {
            ("A", "E"), ("B", "E"), ("C", "F"), ("D", "F"), ("E", "G"), ("F", "G"),
        }
        assert all(e.kind is DepKind.FLOW for e in fig1_ddg.edges)

    def test_flow_latency_is_producer_latency(self, fig1_ddg):
        region = fig1_ddg.region
        by_label = {i.label: i.index for i in region}
        assert fig1_ddg.latency(by_label["A"], by_label["E"]) == 3
        assert fig1_ddg.latency(by_label["C"], by_label["F"]) == 5

    def test_zero_latency_producer_clamped_to_one(self):
        b = RegionBuilder("z")
        b.inst("op1", defs=["v0"], latency=0)
        b.inst("op1", defs=["v1"], uses=["v0"])
        ddg = DDG(b.build())
        assert ddg.latency(0, 1) == 1


class TestAntiAndOutputDependences:
    def test_anti_dependence(self):
        b = RegionBuilder("anti")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"], uses=["v0"])  # reads v0
        b.inst("op1", defs=["v0"])  # redefines v0 -> anti from reader
        ddg = DDG(b.build())
        kinds = {(e.src, e.dst): e.kind for e in ddg.edges}
        assert kinds[(1, 2)] is DepKind.ANTI
        assert kinds[(0, 2)] is DepKind.OUTPUT

    def test_output_dependence_latency_one(self):
        b = RegionBuilder("out")
        b.inst("op5", defs=["v0"])
        b.inst("op1", defs=["v0"])
        ddg = DDG(b.build())
        assert ddg.latency(0, 1) == 1

    def test_parallel_edges_merge_to_max_latency(self):
        b = RegionBuilder("par")
        b.inst("op3", defs=["v0", "v1"])
        b.inst("op1", defs=["v2"], uses=["v0", "v1"])
        ddg = DDG(b.build())
        assert ddg.latency(0, 1) == 3
        assert ddg.num_edges == 1  # merged
        assert len(ddg.edges) == 2  # raw multi-edges kept


class TestStructure:
    def test_roots_and_leaves(self, fig1_ddg):
        region = fig1_ddg.region
        assert {region[i].label for i in fig1_ddg.roots} == {"A", "B", "C", "D"}
        assert {region[i].label for i in fig1_ddg.leaves} == {"G"}

    def test_pred_counts(self, fig1_ddg):
        by_label = {i.label: i.index for i in fig1_ddg.region}
        assert fig1_ddg.num_predecessors[by_label["G"]] == 2
        assert fig1_ddg.num_predecessors[by_label["A"]] == 0

    def test_has_edge_and_latency_errors(self, fig1_ddg):
        assert fig1_ddg.has_edge(0, 4)
        assert not fig1_ddg.has_edge(0, 1)
        with pytest.raises(DDGError):
            fig1_ddg.latency(0, 1)

    def test_max_successor_count(self, fig1_ddg):
        assert fig1_ddg.max_successor_count() == 1

    def test_repr(self, fig1_ddg):
        assert "figure1" in repr(fig1_ddg)

    @given(ddgs())
    @settings(max_examples=50)
    def test_edges_respect_program_order(self, ddg):
        for src in range(ddg.num_instructions):
            for dst, latency in ddg.successors[src]:
                assert src < dst
                assert latency >= 1

    @given(ddgs())
    @settings(max_examples=50)
    def test_successors_and_predecessors_mirror(self, ddg):
        for src in range(ddg.num_instructions):
            for dst, latency in ddg.successors[src]:
                assert (src, latency) in ddg.predecessors[dst]
