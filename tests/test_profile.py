"""Tests for the hierarchical span profiler (repro.profile)."""

import pytest

from repro.errors import ProfileError
from repro.experiments.common import SCALES, ExperimentContext
from repro.profile import (
    NullProfiler,
    SpanProfiler,
    attribution,
    collapsed_stacks,
    get_profiler,
    kernel_phase_rollup,
    profile_session,
    profiled,
    render_kernel_rollup,
    render_tree,
    set_profiler,
    top_leaves,
    write_collapsed,
)


class TestSpanTree:
    def test_nesting_and_charges(self):
        prof = SpanProfiler()
        with prof.span("region"):
            with prof.span("pass1"):
                prof.charge(1e-3)
        root = prof.root
        assert root.total_seconds == pytest.approx(1e-3)
        assert root.children["region"].children["pass1"].self_seconds == pytest.approx(1e-3)

    def test_same_name_merges(self):
        prof = SpanProfiler()
        for _ in range(5):
            with prof.span("iteration"):
                prof.charge(1e-6)
        node = prof.root.children["iteration"]
        assert node.count == 5
        assert node.self_seconds == pytest.approx(5e-6)
        assert len(prof.root.children) == 1

    def test_charge_leaf(self):
        prof = SpanProfiler()
        with prof.span("pass1"):
            prof.charge_leaf("construct", 2e-6)
            prof.charge_leaf("construct", 3e-6)
        leaf = prof.root.children["pass1"].children["construct"]
        assert leaf.is_leaf
        assert leaf.count == 2
        assert leaf.self_seconds == pytest.approx(5e-6)

    def test_push_pop(self):
        prof = SpanProfiler()
        prof.push("outer")
        prof.charge_leaf("x", 1e-6)
        prof.pop()
        assert prof.current is prof.root
        with pytest.raises(ProfileError):
            prof.pop()

    def test_leaf_seconds_ignores_interior_self_time(self):
        prof = SpanProfiler()
        with prof.span("pass1"):
            prof.charge(1e-6)  # interior self time: NOT leaf-attributed
            prof.charge_leaf("construct", 4e-6)
        att = attribution(prof)
        assert att.total_seconds == pytest.approx(5e-6)
        assert att.leaf_seconds == pytest.approx(4e-6)
        assert att.fraction == pytest.approx(0.8)

    def test_empty_tree_fraction_is_one(self):
        assert attribution(SpanProfiler()).fraction == 1.0

    def test_decorator(self):
        prof = SpanProfiler()

        @profiled("work")
        def work():
            get_profiler().charge(1e-6)
            return 42

        assert work() == 42  # inert without a live profiler
        with profile_session(prof):
            assert work() == 42
        assert prof.root.children["work"].count == 1
        assert prof.root.total_seconds == pytest.approx(1e-6)


class TestGlobalInstallation:
    def test_default_is_inert(self):
        prof = get_profiler()
        assert isinstance(prof, NullProfiler)
        assert not prof.enabled
        # Every operation is a harmless no-op.
        with prof.span("x"):
            prof.charge(1.0)
        prof.push("y")
        prof.pop()
        prof.charge_leaf("z", 1.0)

    def test_session_restores_previous(self):
        before = get_profiler()
        live = SpanProfiler()
        with profile_session(live):
            assert get_profiler() is live
        assert get_profiler() is before

    def test_set_profiler_none_restores_default(self):
        previous = set_profiler(SpanProfiler())
        try:
            set_profiler(None)
            assert isinstance(get_profiler(), NullProfiler)
        finally:
            set_profiler(previous)


class TestRendering:
    def _tree(self):
        prof = SpanProfiler()
        with prof.span("region"):
            with prof.span("pass1"):
                prof.charge_leaf("construct", 90e-6)
                prof.charge_leaf("pheromone", 10e-6)
        return prof

    def test_render_tree(self):
        text = render_tree(self._tree())
        assert "span profile" in text
        assert "construct" in text
        assert "leaf attribution: 100.00%" in text

    def test_render_tree_collapses_siblings(self):
        prof = SpanProfiler()
        with prof.span("parent"):
            for i in range(20):
                prof.charge_leaf("leaf%02d" % i, 1e-6)
        text = render_tree(prof, max_children=4)
        assert "(+16 more)" in text

    def test_collapsed_stack_format(self):
        lines = collapsed_stacks(self._tree())
        assert "run;region;pass1;construct 90" in lines
        assert "run;region;pass1;pheromone 10" in lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0  # zero frames omitted
            assert ";" in path

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "stacks.txt"
        count = write_collapsed(str(path), self._tree())
        assert count == 2
        assert len(path.read_text().splitlines()) == 2

    def test_top_leaves(self):
        leaves = top_leaves(self._tree(), top=1)
        assert leaves == [("run/region/pass1/construct", pytest.approx(90e-6))]


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def profiled_context(self):
        context = ExperimentContext(SCALES["test"])
        prof = SpanProfiler()
        with profile_session(prof):
            context.run("sequential")
            context.run("parallel")
        return context, prof

    def test_attribution_meets_acceptance_floor(self, profiled_context):
        context, prof = profiled_context
        att = attribution(prof)
        assert att.fraction >= 0.95
        run_seconds = sum(r.total_seconds for r in context.computed_runs().values())
        assert att.total_seconds == pytest.approx(run_seconds)

    def test_profiling_does_not_change_results(self):
        plain = ExperimentContext(SCALES["test"]).run("parallel")
        profiled_ctx = ExperimentContext(SCALES["test"])
        with profile_session(SpanProfiler()):
            traced = profiled_ctx.run("parallel")
        for (pk, po), (tk, to) in zip(plain.all_regions(), traced.all_regions()):
            assert pk.kernel.name == tk.kernel.name
            assert tuple(po.schedule.cycles) == tuple(to.schedule.cycles)
            assert po.scheduling_seconds == to.scheduling_seconds
        assert plain.total_seconds == traced.total_seconds

    def test_tree_has_expected_shape(self, profiled_context):
        _context, prof = profiled_context
        suites = [c for c in prof.root.children.values() if c.category == "suite"]
        names = {s.name for s in suites}
        assert names == {"suite:sequential-aco", "suite:parallel-aco"}
        parallel = prof.root.children["suite:parallel-aco"]
        region = next(
            c for c in parallel.children.values() if c.category == "region"
            and any(ch.category == "pass" for ch in c.children.values())
        )
        a_pass = next(
            c for c in region.children.values() if c.category == "pass"
        )
        assert {"kernel", "launch", "transfer"} <= set(a_pass.children)
        kernel = a_pass.children["kernel"]
        assert {"construct", "uniform"} <= set(kernel.children)
        construct = kernel.children["construct"]
        assert {"compute", "memory"} <= set(construct.children)


class TestKernelRollup:
    def test_rollup_from_memory_records(self):
        from repro.telemetry import MemorySink, Telemetry, telemetry_session

        sink = MemorySink()
        context = ExperimentContext(SCALES["test"], telemetry=Telemetry(sink=sink))
        with telemetry_session(context.telemetry):
            context.run("parallel")
        rollups = kernel_phase_rollup(sink.records)
        assert set(rollups) <= {1, 2}
        assert rollups  # the parallel run launches kernels
        for phase in rollups.values():
            assert phase.launches > 0
            assert sum(phase.seconds.values()) == pytest.approx(phase.kernel_seconds)
            assert phase.batches >= phase.launches  # every launch needs >= 1 batch
        text = render_kernel_rollup(rollups)
        assert "kernel attribution" in text
        assert "execution batches" in text

    def test_rollup_empty(self):
        assert kernel_phase_rollup([]) == {}
        assert "nothing to attribute" in render_kernel_rollup({})
