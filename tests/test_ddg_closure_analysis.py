"""Tests for the transitive closure, the CP analysis and the lower bounds."""

import pytest
from hypothesis import given, settings

from repro.ddg import (
    DDG,
    TransitiveClosure,
    critical_path_info,
    length_lower_bound,
    pressure_lower_bounds,
    region_bounds,
)
from repro.heuristics import CriticalPathHeuristic, list_schedule
from repro.ir.builder import RegionBuilder
from repro.ir.registers import VGPR
from repro.machine import amd_vega20
from repro.rp import peak_pressure

from strategies import ddgs


def _brute_force_reaches(ddg, src, dst):
    stack = [src]
    seen = set()
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for succ, _lat in ddg.successors[node]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


class TestTransitiveClosure:
    def test_figure1_ready_bound_matches_paper(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        # Section V-A: trivial bound 7, closure bound 5 on this DDG.
        assert fig1_ddg.num_instructions == 7
        assert closure.ready_list_upper_bound() == 5

    def test_figure1_independence_example(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        by_label = {i.label: i.index for i in fig1_ddg.region}
        # Section V-A: A is independent of B, C, D and F (4 instructions).
        assert closure.independent_count(by_label["A"]) == 4
        for other in "BCDF":
            assert closure.are_independent(by_label["A"], by_label[other])
        assert not closure.are_independent(by_label["A"], by_label["E"])

    def test_reaches(self, fig1_ddg):
        closure = TransitiveClosure(fig1_ddg)
        by_label = {i.label: i.index for i in fig1_ddg.region}
        assert closure.reaches(by_label["A"], by_label["G"])
        assert not closure.reaches(by_label["G"], by_label["A"])
        assert not closure.reaches(by_label["A"], by_label["B"])

    @given(ddgs(max_size=25))
    @settings(max_examples=30)
    def test_matches_brute_force(self, ddg):
        closure = TransitiveClosure(ddg)
        n = ddg.num_instructions
        for src in range(min(n, 10)):
            for dst in range(n):
                if src == dst:
                    continue
                assert closure.reaches(src, dst) == _brute_force_reaches(ddg, src, dst)

    @given(ddgs())
    @settings(max_examples=30)
    def test_independence_is_symmetric(self, ddg):
        closure = TransitiveClosure(ddg)
        n = ddg.num_instructions
        for a in range(n):
            for b in range(a + 1, n):
                assert closure.are_independent(a, b) == closure.are_independent(b, a)

    @given(ddgs())
    @settings(max_examples=30)
    def test_ready_bound_holds_during_scheduling(self, ddg):
        """No dependence-ready set can exceed the closure bound."""
        bound = TransitiveClosure(ddg).ready_list_upper_bound()
        pred_left = list(ddg.num_predecessors)
        ready = [i for i in range(ddg.num_instructions) if pred_left[i] == 0]
        max_seen = len(ready)
        while ready:
            node = ready.pop(0)  # FIFO maximizes breadth
            for succ, _lat in ddg.successors[node]:
                pred_left[succ] -= 1
                if pred_left[succ] == 0:
                    ready.append(succ)
            max_seen = max(max_seen, len(ready))
        assert max_seen <= bound


class TestCriticalPath:
    def test_figure1(self, fig1_ddg):
        info = critical_path_info(fig1_ddg)
        by_label = {i.label: i.index for i in fig1_ddg.region}
        # C (lat 5) -> F (lat 1) -> G gives earliest starts 0, 5, 6.
        assert info.earliest_start[by_label["C"]] == 0
        assert info.earliest_start[by_label["F"]] == 5
        assert info.earliest_start[by_label["G"]] == 6
        assert info.critical_path_length == 7
        assert info.height[by_label["C"]] == 7
        assert info.height[by_label["G"]] == 1
        assert info.is_on_critical_path(by_label["C"])
        assert not info.is_on_critical_path(by_label["B"])

    def test_chain(self, chain_region):
        info = critical_path_info(DDG(chain_region))
        assert info.critical_path_length == 3 * 2 + 1  # three lat-2 hops + issue

    @given(ddgs())
    @settings(max_examples=30)
    def test_height_decreases_along_edges(self, ddg):
        info = critical_path_info(ddg)
        for src in range(ddg.num_instructions):
            for dst, latency in ddg.successors[src]:
                assert info.height[src] >= latency + info.height[dst]


class TestLowerBounds:
    def test_length_lb_at_least_n(self, fig1_ddg):
        assert length_lower_bound(fig1_ddg) == 7  # max(CP=7, n=7)

    def test_length_lb_uses_critical_path(self, chain_region):
        assert length_lower_bound(DDG(chain_region)) == 7  # CP 7 > n 4

    def test_pressure_lb_figure1(self, fig1_region):
        bounds = pressure_lower_bounds(fig1_region)
        # G reads v5 and v6 simultaneously -> at least 2 VGPRs live.
        assert bounds[VGPR] == 2

    def test_live_out_counts(self):
        b = RegionBuilder("lo")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"])
        b.inst("op1", defs=["v2"])
        region = b.live_out("v0", "v1", "v2").build()
        assert pressure_lower_bounds(region)[VGPR] == 3

    @given(ddgs(max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_bounds_are_sound(self, ddg):
        """Every legal schedule respects both lower bounds."""
        machine = amd_vega20()
        bounds = region_bounds(ddg)
        schedule = list_schedule(ddg, machine, heuristic=CriticalPathHeuristic())
        assert schedule.length >= bounds.length
        peak = peak_pressure(schedule)
        for cls, bound in bounds.pressure:
            assert peak.get(cls, 0) >= bound

    def test_region_bounds_pressure_lookup(self, fig1_ddg):
        bounds = region_bounds(fig1_ddg)
        assert bounds.pressure_of(VGPR) == 2
        assert bounds.pressure_dict[VGPR] == 2
