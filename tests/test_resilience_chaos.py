"""Tests for the chaos harness (the CI chaos-sweep job's engine)."""

import pytest

from repro.machine import amd_vega20
from repro.resilience.chaos import (
    ChaosReport,
    RegionTrial,
    chaos_regions,
    chaos_sweep,
    fault_class_proofs,
    main,
)


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


def test_region_set_is_deterministic(machine):
    a = chaos_regions(machine, sizes=(8, 10))
    b = chaos_regions(machine, sizes=(8, 10))
    assert [d.region.name for d in a] == ["chaos_08", "chaos_10"]
    assert [len(d.region) for d in a] == [len(d.region) for d in b]


def test_fault_class_proofs_cover_every_class(machine):
    # Size 10 is the smallest region whose search runs long enough for an
    # injected hang (iteration 0-2) to fire before termination.
    report = fault_class_proofs(machine, sizes=(10,), max_retries=1)
    assert set(report.faults_by_class) == {"launch", "corruption", "hang", "oom"}
    assert report.recovery_rate == 1.0
    assert report.all_valid
    assert report.degraded == 0


def test_sweep_is_deterministic(machine):
    a = chaos_sweep(seeds=(11,), machine=machine, sizes=(8, 10))
    b = chaos_sweep(seeds=(11,), machine=machine, sizes=(8, 10))
    assert [t.faults for t in a.trials] == [t.faults for t in b.trials]
    assert a.retry_overhead_seconds == b.retry_overhead_seconds


def test_report_aggregation():
    trial = lambda faults, recovered, valid: RegionTrial(  # noqa: E731
        region="r", chaos_seed=1, outcome_rung="vectorized", attempts=1,
        resumed_attempts=0, faults=faults, recovered=recovered,
        schedule_valid=valid, spent_seconds=2.0, result_seconds=1.5,
    )
    report = ChaosReport(trials=[
        trial((), True, True),
        trial((("launch", "vectorized", 0),), True, True),
        trial((("hang", "loop", 1),), False, True),
    ])
    assert report.faults_by_class == {"launch": 1, "hang": 1}
    assert len(report.faulted_trials) == 2
    assert report.recovery_rate == 0.5
    assert report.degraded == 1
    assert report.retry_overhead_seconds == pytest.approx(1.5)
    assert report.all_valid
    assert "recovery rate 50%" in report.summary()


def test_main_exits_clean():
    assert main(["--seeds", "11", "--sizes", "8", "--skip-proofs"]) == 0
