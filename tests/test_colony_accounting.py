"""Behavioural tests of the simulated-cost accounting: the Section V
optimizations must move modelled time in the documented direction."""

import random

import pytest

from repro.config import ACOParams, GPUParams, replace_params
from repro.ddg import DDG
from repro.machine import amd_vega20
from repro.parallel import ParallelACOScheduler
from repro.suite.patterns import pattern_region

from conftest import make_region


@pytest.fixture(scope="module")
def vega_m():
    return amd_vega20()


@pytest.fixture(scope="module")
def big_ddg():
    return DDG(make_region("reduce", 11, 120))


def _pass2_seconds(machine, ddg, gpu, seed=3, params=None):
    scheduler = ParallelACOScheduler(machine, params=params, gpu_params=gpu)
    result = scheduler.schedule(ddg, seed=seed)
    return result


BASE = GPUParams(blocks=4)


class TestMemoryOptimizationCosts:
    def test_aos_layout_is_much_slower(self, vega_m, big_ddg):
        on = _pass2_seconds(vega_m, big_ddg, BASE)
        off = _pass2_seconds(vega_m, big_ddg, replace_params(BASE, soa_layout=False))
        # Memory optimizations dominate (paper Table 4.a: 6-11x overall).
        assert off.pass2.kernel_seconds > 3 * on.pass2.kernel_seconds

    def test_unbatched_transfers_cost_per_array(self, vega_m, big_ddg):
        on = _pass2_seconds(vega_m, big_ddg, BASE)
        off = _pass2_seconds(vega_m, big_ddg, replace_params(BASE, batched_transfers=False))
        assert off.pass2.transfer_seconds > on.pass2.transfer_seconds

    def test_memory_opts_do_not_change_search(self, vega_m, big_ddg):
        """Layout toggles change only the cost model, never the schedules."""
        on = _pass2_seconds(vega_m, big_ddg, BASE)
        off = _pass2_seconds(vega_m, big_ddg, BASE.without_memory_opts())
        assert on.schedule == off.schedule
        assert on.pass1.iterations == off.pass1.iterations
        assert on.pass2.iterations == off.pass2.iterations


class TestDivergenceOptimizationCosts:
    def test_thread_level_draws_cost_more_per_iteration(self, vega_m, big_ddg):
        on = _pass2_seconds(vega_m, big_ddg, BASE)
        off = _pass2_seconds(
            vega_m, big_ddg, replace_params(BASE, wavefront_level_choice=False)
        )
        def per_iter(r):
            seconds = r.pass1.kernel_seconds + r.pass2.kernel_seconds
            iters = max(1, r.pass1.iterations + r.pass2.iterations)
            return seconds / iters
        assert per_iter(off) > per_iter(on) * 0.9  # never cheaper (allow noise)

    def test_all_wavefronts_stalling_cost_more(self, vega_m, big_ddg):
        quarter = _pass2_seconds(
            vega_m, big_ddg, replace_params(BASE, stall_wavefront_fraction=0.25)
        )
        everyone = _pass2_seconds(
            vega_m, big_ddg, replace_params(BASE, stall_wavefront_fraction=1.0)
        )
        def p2_per_iter(r):
            return r.pass2.kernel_seconds / max(1, r.pass2.iterations)
        assert p2_per_iter(everyone) > p2_per_iter(quarter) * 0.8

    def test_zero_stall_wavefronts_cannot_recover_length(self, vega_m, big_ddg):
        """Table 6's 0% column: without optional stalls the pass-2 search
        cannot satisfy tight targets and falls back to the (long) stretched
        pass-1 schedule."""
        none = _pass2_seconds(
            vega_m, big_ddg, replace_params(BASE, stall_wavefront_fraction=0.0)
        )
        half = _pass2_seconds(
            vega_m, big_ddg, replace_params(BASE, stall_wavefront_fraction=0.5)
        )
        assert none.length >= half.length


class TestLaunchGeometry:
    def test_more_blocks_more_ants_same_batch_cost(self, vega_m):
        """Within one batch (<= 240 wavefronts) the kernel time is the max
        over wavefronts, so doubling blocks must not double kernel time."""
        ddg = DDG(make_region("transform", 3, 60))
        small = _pass2_seconds(vega_m, ddg, GPUParams(blocks=2), seed=9)
        big = _pass2_seconds(vega_m, ddg, GPUParams(blocks=8), seed=9)
        if small.pass2.invoked and big.pass2.invoked:
            assert big.pass2.kernel_seconds < 2 * small.pass2.kernel_seconds

    def test_launch_overhead_charged_per_invoked_pass(self, vega_m):
        ddg = DDG(make_region("scan", 5, 25))
        result = _pass2_seconds(vega_m, ddg, GPUParams(blocks=2), seed=1)
        for p in (result.pass1, result.pass2):
            if p.invoked:
                assert p.launch_seconds > 0
            else:
                assert p.seconds == 0.0
