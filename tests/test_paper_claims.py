"""Regression guards on the paper's headline *shape* claims.

These tests run the shared test-scale experiment context and assert the
qualitative results the reproduction exists to show. If a refactor or a
recalibration breaks one of these, the repository no longer reproduces the
paper — unit tests alone would not catch that.
"""

import pytest

from repro.config import geometric_mean
from repro.experiments import SCALES
from repro.experiments.common import ExperimentContext, thresholded_compile_seconds
from repro.pipeline import improvement_statistics


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SCALES["test"])


class TestQualityClaims:
    """Section VI-B: ACO gives significantly better schedules than AMD's."""

    def test_aco_never_hurts_kernel_occupancy(self, context):
        stats = improvement_statistics(context.run("parallel"))
        assert stats.overall_occupancy_increase_pct >= 0.0

    def test_aco_improves_something(self, context):
        stats = improvement_statistics(context.run("parallel"))
        assert (
            stats.overall_occupancy_increase_pct > 0.0
            or stats.overall_length_reduction_pct > 0.0
        )

    def test_every_shipped_schedule_is_pareto_sane(self, context):
        """The shipped schedule is never strictly worse than the heuristic
        on both objectives (the post-scheduling filter's contract)."""
        for _kernel, outcome in context.run("parallel").all_regions():
            worse_occ = outcome.final.occupancy < outcome.heuristic.occupancy
            worse_len = outcome.final.length > outcome.heuristic.length
            assert not (worse_occ and worse_len)


class TestSpeedupClaims:
    """Section VI-C: parallelization wins, and wins more on big regions."""

    def test_large_regions_speed_up(self, context):
        records = context.speedup_records()
        big = [r.speedup for r in records if r.size - 0 >= context.scale.large_region_floor]
        if big:
            assert geometric_mean(big) > 2.0

    def test_speedup_grows_with_size(self, context):
        records = context.speedup_records()
        small = [r.speedup for r in records if r.size < 50]
        large = [r.speedup for r in records if r.size >= 50]
        if small and large:
            assert geometric_mean(large) > geometric_mean(small)

    def test_some_small_regions_lose(self, context):
        """The launch/copy overhead must be visible: the minimum pass-2
        speedup on small regions sits near or below 1x (paper min 0.45)."""
        records = [
            r for r in context.speedup_records() if r.pass_index == 2 and r.size < 50
        ]
        if len(records) >= 5:
            assert min(r.speedup for r in records) < 1.5


class TestCompileTimeClaims:
    """Section VI-D / Table 5."""

    def test_parallel_cheaper_than_sequential(self, context):
        seq = thresholded_compile_seconds(context, context.run("sequential"), 21)
        par = thresholded_compile_seconds(context, context.run("parallel"), 21)
        assert par < seq

    def test_both_cost_more_than_baseline(self, context):
        base = context.run("baseline").total_seconds
        seq = thresholded_compile_seconds(context, context.run("sequential"), 21)
        assert seq > base


class TestOptimizationClaims:
    """Section V / Tables 4.a, 4.b: memory opts are worth multiples,
    divergence opts are worth fractions."""

    def test_memory_optimizations_dominate(self, context):
        from repro.ddg import DDG
        from conftest import make_region

        scheduler_on = context.parallel_scheduler()
        scheduler_off = context.parallel_scheduler(
            gpu=context.scale.gpu.without_memory_opts()
        )
        ddg = DDG(make_region("reduce", 7, 80))
        on = scheduler_on.schedule(ddg, seed=1)
        off = scheduler_off.schedule(ddg, seed=1)
        if on.pass2.invoked:
            assert off.pass2.kernel_seconds > 3 * on.pass2.kernel_seconds
            # And the search itself is identical (pure cost-model toggles).
            assert off.schedule == on.schedule


class TestCostFunctionClaim:
    """Section II-A: two-pass beats weighted-sum on occupancy (GPU)."""

    def test_two_pass_occupancy_at_least_weighted(self, context):
        from repro.aco import SequentialACOScheduler, WeightedSumACOScheduler
        from repro.ddg import DDG
        from conftest import make_region

        machine = context.machine
        two_pass_occ = weighted_occ = 0
        for seed in range(3):
            ddg = DDG(make_region("reduce", seed, 60))
            tp = SequentialACOScheduler(machine).schedule(ddg, seed=seed)
            ws = WeightedSumACOScheduler(machine, pressure_weight=0.001).schedule(
                ddg, seed=seed
            )
            two_pass_occ += machine.occupancy_for_pressure(tp.peak)
            weighted_occ += machine.occupancy_for_pressure(ws.peak)
        assert two_pass_occ >= weighted_occ
