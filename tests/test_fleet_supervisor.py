"""Tests for the fleet supervisor: epochs, fault detection, recovery paths."""

import pytest

from repro.config import FleetParams
from repro.errors import GPUSimError, WorkerCrash, WorkerHang
from repro.fleet import FleetSupervisor, HOST_WORKER, ShardWorker, outcome_digest
from repro.fleet.chaos import batches_identical, fleet_items, fleet_scheduler
from repro.fleet.worker import _corrupt
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.telemetry import MemorySink, Telemetry


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(scope="module")
def items(machine):
    return fleet_items(machine)


@pytest.fixture(scope="module")
def single(machine, items):
    return fleet_scheduler(machine).schedule_batch(items)


def _supervise(machine, items, num_shards, worker_faults=None, sink=None):
    scheduler = fleet_scheduler(machine)
    if sink is not None:
        scheduler = type(scheduler)(
            machine,
            params=scheduler.params,
            gpu_params=scheduler.gpu_params,
            telemetry=Telemetry(sink=sink),
        )
    return FleetSupervisor(
        scheduler, FleetParams(num_shards=num_shards), worker_faults=worker_faults
    ).schedule_batch(items)


class TestFaultFree:
    def test_single_epoch_no_recovery(self, machine, items, single):
        fleet = _supervise(machine, items, 2)
        assert fleet.epochs == 1
        assert fleet.dispatches == len(items)
        assert fleet.reassignments == 0
        assert fleet.restarts == 0
        assert fleet.host_fallback_regions == 0
        assert fleet.recovered_regions == 0
        assert all(count == 0 for count in fleet.worker_faults.values())
        assert batches_identical(single, fleet.batch)

    def test_makespan_beats_serial_and_efficiency_is_sane(
        self, machine, items, single
    ):
        fleet = _supervise(machine, items, 2)
        assert fleet.fleet_seconds < single.unbatched_seconds
        assert 0.5 < fleet.scaling_efficiency <= 1.0

    def test_more_shards_than_regions(self, machine, items, single):
        fleet = _supervise(machine, items, 8)
        assert batches_identical(single, fleet.batch)
        assert fleet.dispatches == len(items)

    def test_empty_batch_rejected(self, machine):
        with pytest.raises(GPUSimError):
            _supervise(machine, [], 2)


class TestCrashRecovery:
    def test_constant_crashes_exhaust_fleet_then_host_rescues(
        self, machine, items, single
    ):
        plan = FaultPlan(seed=1, rates={"worker_crash": 1.0})
        fleet = _supervise(machine, items, 2, worker_faults=plan)
        # Every dispatch crashes: both workers die, restart once (the
        # default budget), die again — then every region goes to the host.
        assert fleet.worker_faults["worker_crash"] == 4  # 2 workers x 2 lives
        assert fleet.restarts == 2
        assert fleet.host_fallback_regions == len(items)
        assert fleet.recovered_regions == len(items)
        assert fleet.serial_seconds > 0.0
        assert batches_identical(single, fleet.batch)

    def test_hang_detection_charges_heartbeat_latency(
        self, machine, items, single
    ):
        plan = FaultPlan(seed=1, rates={"worker_hang": 1.0})
        fleet = _supervise(machine, items, 2, worker_faults=plan)
        assert fleet.worker_faults["worker_hang"] == 4
        # Each hanged epoch costs one missed heartbeat on top of the
        # serial host rescue.
        params = FleetParams()
        assert fleet.fleet_seconds >= (
            fleet.serial_seconds + 2 * params.heartbeat_seconds
        )
        assert batches_identical(single, fleet.batch)

    def test_straggler_demotion_after_restart_backoff(
        self, machine, items, single
    ):
        # Pinned plan: one crash in epoch 1; the restarted worker's backoff
        # head start dwarfs a slot's seconds, so it straggles next epoch.
        plan = FaultPlan(seed=0, rates={"worker_crash": 0.4})
        fleet = _supervise(machine, items, 4, worker_faults=plan)
        assert fleet.worker_faults["worker_crash"] == 1
        assert fleet.restarts == 1
        assert fleet.stragglers >= 1
        assert batches_identical(single, fleet.batch)


class TestCorruptionRecovery:
    def test_corrupt_returns_rejected_and_redispatched(
        self, machine, items, single
    ):
        plan = FaultPlan(seed=1, rates={"worker_corrupt": 1.0})
        fleet = _supervise(machine, items, 2, worker_faults=plan)
        params = FleetParams()
        # Workers survive corruption, so every slot burns its whole
        # re-dispatch budget before the host rescues it.
        assert fleet.restarts == 0
        assert fleet.worker_faults["worker_corrupt"] == (
            len(items) * params.max_slot_redispatches
        )
        assert fleet.host_fallback_regions == len(items)
        assert batches_identical(single, fleet.batch)

    def test_digest_convicts_a_perturbed_outcome(self, machine, items):
        outcome = fleet_scheduler(machine).run_slot(items[0], 2)
        digest = outcome_digest(outcome)
        assert outcome_digest(outcome) == digest  # stable
        assert outcome_digest(_corrupt(outcome)) != digest


class TestShardWorker:
    def test_worker_owns_a_device_clone(self, machine):
        scheduler = fleet_scheduler(machine)
        worker = ShardWorker(3, scheduler)
        assert worker.scheduler.device is not scheduler.device
        assert worker.scheduler.device == scheduler.device

    def test_crash_and_hang_burn_the_dispatch_counter(self, machine, items):
        scheduler = fleet_scheduler(machine)
        crash = ShardWorker(0, scheduler, FaultPlan(seed=1, rates={"worker_crash": 1.0}))
        with pytest.raises(WorkerCrash):
            crash.run_dispatch(0, items[0], 2)
        assert crash.dispatches == 1
        hang = ShardWorker(0, scheduler, FaultPlan(seed=1, rates={"worker_hang": 1.0}))
        with pytest.raises(WorkerHang):
            hang.run_dispatch(0, items[0], 2)
        assert hang.dispatches == 1

    def test_result_is_worker_independent(self, machine, items):
        scheduler = fleet_scheduler(machine)
        a = ShardWorker(0, scheduler).run_dispatch(0, items[0], 2)
        b = ShardWorker(7, scheduler).run_dispatch(0, items[0], 2)
        assert a.outcome.result.schedule == b.outcome.result.schedule
        assert a.outcome.seconds == b.outcome.seconds
        assert a.digest == b.digest


class TestTelemetry:
    def test_fleet_events_and_worker_stamping(self, machine, items):
        sink = MemorySink()
        _supervise(machine, items, 2, sink=sink)
        assert len(sink.by_type("fleet_start")) == 1
        dispatches = sink.by_type("shard_dispatch")
        assert len(dispatches) == len(items)
        assert {d["worker"] for d in dispatches} == {0, 1}
        end = sink.by_type("fleet_end")[0]
        assert end["num_shards"] == 2
        assert end["reassignments"] == 0
        # Events emitted inside a dispatch carry the ambient worker id.
        launches = [r for r in sink.by_type("kernel_launch") if "worker" in r]
        assert launches and all(r["worker"] in (0, 1) for r in launches)

    def test_recovery_events(self, machine, items):
        sink = MemorySink()
        plan = FaultPlan(seed=1, rates={"worker_crash": 1.0})
        _supervise(machine, items, 2, worker_faults=plan, sink=sink)
        faults = sink.by_type("worker_fault")
        assert faults and all(f["fault_class"] == "worker_crash" for f in faults)
        assert len(sink.by_type("worker_restart")) == 2
        reassigns = sink.by_type("reassign")
        assert reassigns
        # The final reassignments hand everything to the host.
        assert reassigns[-1]["from_worker"] == HOST_WORKER
