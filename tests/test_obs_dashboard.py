"""Tests for the terminal dashboard and the obs CLI entry points."""

import json
import os

import pytest

from repro.config import ACOParams, FilterParams, SuiteParams
from repro.machine import amd_vega20
from repro.obs import AggregatingSink, MetricsAggregator, render_dashboard
from repro.obs.dashboard import main as dashboard_main
from repro.obs.export import main as export_main
from repro.pipeline import CompilePipeline
from repro.aco import SequentialACOScheduler
from repro.suite import generate_suite
from repro.telemetry import JSONLSink, MemorySink, TeeSink, Telemetry


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A real recorded trace (plus its live aggregator for cross-checks)."""
    path = str(tmp_path_factory.mktemp("obs") / "trace.jsonl")
    machine = amd_vega20()
    suite = generate_suite(
        SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=3),
        max_region_size=60,
    )
    aggregator = MetricsAggregator()
    tele = Telemetry(TeeSink(JSONLSink(path), AggregatingSink(aggregator)))
    CompilePipeline(
        machine,
        scheduler=SequentialACOScheduler(
            machine, params=ACOParams(max_iterations=8), telemetry=tele
        ),
        filters=FilterParams(cycle_threshold=0),
        telemetry=tele,
    ).compile_suite(suite)
    tele.close()
    return path, aggregator


class TestRenderDashboard:
    def test_panels_present(self, trace_path):
        _, aggregator = trace_path
        text = render_dashboard(aggregator)
        assert "repro.obs dashboard" in text
        assert "throughput" in text
        assert "region latency" in text
        assert "p50" in text and "p99" in text
        assert "SLO" in text
        assert "burn-rate" in text
        assert "[ok]" in text or "[BREACH]" in text

    def test_render_is_deterministic(self, trace_path):
        _, aggregator = trace_path
        assert render_dashboard(aggregator) == render_dashboard(aggregator)

    def test_empty_aggregator_renders(self):
        text = render_dashboard(MetricsAggregator())
        assert "events 0" in text
        assert "[ok]" in text  # an empty run violates nothing

    def test_backend_mix_panel_appears_with_kernel_seconds(self):
        aggregator = MetricsAggregator()
        aggregator._inc("kernel.seconds.pass1.vectorized", 2e-3)
        aggregator._inc("kernel.seconds.pass2.loop", 1e-3)
        text = render_dashboard(aggregator)
        assert "backend mix" in text
        assert "vectorized" in text and "loop" in text

    def test_modeled_overhead_stays_under_target(self, trace_path):
        _, aggregator = trace_path
        assert aggregator.modeled_overhead_pct() < 5.0


class TestDashboardCLI:
    def test_renders_trace_once(self, trace_path, capsys):
        path, _ = trace_path
        assert dashboard_main([path]) == 0
        out = capsys.readouterr().out
        assert "repro.obs dashboard" in out
        assert "SLO" in out

    def test_offline_render_matches_live(self, trace_path, capsys):
        path, aggregator = trace_path
        dashboard_main([path])
        out = capsys.readouterr().out
        assert out == render_dashboard(aggregator)

    def test_slo_target_flag(self, trace_path, capsys):
        path, _ = trace_path
        assert dashboard_main([path, "--slo-target", "0.5"]) == 0
        assert "50.0%" in capsys.readouterr().out

    def test_missing_trace_errors(self, tmp_path, capsys):
        assert dashboard_main([str(tmp_path / "absent.jsonl")]) == 2


class TestExportCLI:
    def test_exports_from_trace(self, trace_path, tmp_path, capsys):
        path, aggregator = trace_path
        om = str(tmp_path / "m.om")
        snap = str(tmp_path / "s.json")
        perfetto = str(tmp_path / "p.json")
        rc = export_main([
            path, "--openmetrics", om, "--snapshot", snap, "--perfetto", perfetto,
        ])
        assert rc == 0
        # The offline exports equal the live aggregator's.
        assert open(snap).read() == aggregator.snapshot_json()
        from repro.obs import lint_openmetrics

        assert lint_openmetrics(open(om).read()) == []
        trace = json.load(open(perfetto))
        assert trace["traceEvents"]

    def test_lint_mode_accepts_own_export(self, trace_path, tmp_path, capsys):
        path, _ = trace_path
        om = str(tmp_path / "m.om")
        export_main([path, "--openmetrics", om])
        capsys.readouterr()
        assert export_main(["--lint", om]) == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_mode_rejects_broken_doc(self, tmp_path, capsys):
        bad = tmp_path / "bad.om"
        bad.write_text("# TYPE repro_x counter\nrepro_x 1\n")
        assert export_main(["--lint", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out

    def test_default_prints_openmetrics(self, trace_path, capsys):
        path, _ = trace_path
        assert export_main([path]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")


class TestWatchFlag:
    def test_cli_watch_renders_dashboard(self, tmp_path, capsys, monkeypatch):
        for name in ("REPRO_DEADLINE", "REPRO_MAX_RETRIES", "REPRO_CHAOS",
                     "REPRO_DEGRADE"):
            monkeypatch.setenv(name, "")
        from repro.cli import main as cli_main

        snap = str(tmp_path / "snap.json")
        rc = cli_main([
            "table2", "--scale", "test", "--watch", "--obs-snapshot", snap,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.obs dashboard" in out
        assert os.path.exists(snap)
        json.loads(open(snap).read())
