"""Shared hypothesis strategies for regions and DDGs.

One home for the generators every property-based test draws from
(previously duplicated ad hoc across the DDG/heuristic/RP modules):

* :func:`make_region` — a deterministic generated region from a pattern
  name, seed and size (also usable outside hypothesis, e.g. for goldens);
* :func:`regions` — a hypothesis strategy over generated regions;
* :func:`ddgs` — a hypothesis strategy over their dependence graphs;
* :func:`medium_regions` — the differential/seed-sweep sizing (large
  enough to exercise both passes, small enough for the scalar backend).

Import from here (``from strategies import ddgs``); ``conftest`` re-exports
the same names so older spellings keep working.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.ddg import DDG
from repro.suite.patterns import PATTERN_NAMES, pattern_region


def make_region(pattern: str, seed: int, size: int):
    """Deterministic generated region (used by strategies and tests)."""
    return pattern_region(pattern, random.Random(seed), size)


@st.composite
def regions(draw, min_size: int = 2, max_size: int = 40):
    """Hypothesis strategy: a deterministic generated region."""
    pattern = draw(st.sampled_from(PATTERN_NAMES))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    return make_region(pattern, seed, size)


@st.composite
def ddgs(draw, min_size: int = 2, max_size: int = 40):
    """Hypothesis strategy: the DDG of a generated region."""
    return DDG(draw(regions(min_size=min_size, max_size=max_size)))


@st.composite
def medium_regions(draw, min_size: int = 6, max_size: int = 18):
    """Regions sized for cross-backend differential runs.

    Big enough that pass 2 is usually invoked (stalls, pressure targets),
    small enough that the scalar loop backend finishes in well under a
    second per schedule.
    """
    return draw(regions(min_size=min_size, max_size=max_size))
