"""Property tests for the MAX-MIN Ant System strategy invariants.

MMAS makes three hard promises (see :mod:`repro.aco.strategy`): every
pheromone entry stays inside ``[tau_min, tau_max]`` after every update, a
stagnation reinitialization resets the whole table to exactly ``tau_max``,
and the deposit touches *only* the best tour's links. Hypothesis drives
the strategy directly against randomized tables and tours, independent of
any scheduler, so a future refactor cannot weaken the clamping without a
counterexample surfacing here.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aco.pheromone import PheromoneTable
from repro.aco.strategy import (
    STRATEGIES,
    AntSystemStrategy,
    MaxMinAntSystem,
    make_strategy,
    resolve_strategy,
)
from repro.config import ACOParams, STRATEGY_NAMES
from repro.errors import ConfigError


@st.composite
def mmas_cases(draw):
    """A strategy + table + two legal tours over the same instruction set."""
    n = draw(st.integers(min_value=2, max_value=12))
    params = ACOParams(
        strategy="mmas",
        mmas_reinit_stagnation=draw(st.integers(min_value=1, max_value=4)),
        mmas_tau_min_scale=draw(st.floats(min_value=0.5, max_value=8.0)),
    )
    strategy = MaxMinAntSystem(params, n)
    table = PheromoneTable(n, params)
    # Scatter the table so clamping has real work to do.
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    table.tau[:] = rng.uniform(0.0, 4.0 * params.max_pheromone, size=table.tau.shape)
    perm = list(range(n))
    winner = draw(st.permutations(perm))
    best = draw(st.permutations(perm))
    winner_gap = draw(st.floats(min_value=0.0, max_value=50.0))
    best_gap = draw(st.floats(min_value=0.0, max_value=50.0))
    without = draw(st.integers(min_value=0, max_value=12))
    return strategy, table, tuple(winner), winner_gap, tuple(best), best_gap, without


@settings(max_examples=200, deadline=None)
@given(case=mmas_cases())
def test_every_entry_within_bounds_after_update(case):
    strategy, table, winner, winner_gap, best, best_gap, without = case
    strategy.update(
        table,
        winner_order=winner,
        winner_gap=winner_gap,
        best_order=best,
        best_gap=best_gap,
        without_improvement=without,
    )
    lo, hi = strategy.bounds(best_gap)
    assert lo > 0.0
    assert np.all(table.tau >= lo - 1e-12)
    assert np.all(table.tau <= hi + 1e-12)


@settings(max_examples=100, deadline=None)
@given(case=mmas_cases())
def test_reinitialization_resets_exactly_to_tau_max(case):
    strategy, table, winner, winner_gap, best, best_gap, _ = case
    period = strategy.params.mmas_reinit_stagnation
    reinitialized = strategy.update(
        table,
        winner_order=winner,
        winner_gap=winner_gap,
        best_order=best,
        best_gap=best_gap,
        without_improvement=period,  # exactly on the restart period
    )
    assert reinitialized
    hi = strategy.tau_max(best_gap)
    assert np.all(table.tau == hi)


@settings(max_examples=100, deadline=None)
@given(case=mmas_cases())
def test_deposit_touches_only_best_tour_links(case):
    strategy, table, winner, winner_gap, best, best_gap, _ = case
    # without_improvement=0 can never reinitialize: the update is always
    # evaporate + best-only deposit + clamp.
    before = table.tau.copy()
    strategy.update(
        table,
        winner_order=winner,
        winner_gap=winner_gap,
        best_order=best,
        best_gap=best_gap,
        without_improvement=0,
    )
    lo, hi = strategy.bounds(best_gap)
    expected = np.clip(before * strategy.params.decay, lo, hi)
    raised = np.argwhere(table.tau > expected + 1e-12)
    best_links = set()
    previous = table.start_row
    for index in best:
        best_links.add((previous, index))
        previous = index
    for row, col in raised:
        assert (int(row), int(col)) in best_links, (
            "entry (%d, %d) rose without being on the best tour" % (row, col)
        )
    # And the winner's links (when off the best tour) must NOT be deposited.
    amount = strategy.params.deposit / (1.0 + max(0.0, best_gap))
    previous = table.start_row
    for index in winner:
        if (previous, index) not in best_links:
            assert table.tau[previous, index] <= expected[previous, index] + 1e-12
        previous = index
    assert amount > 0.0


@settings(max_examples=50, deadline=None)
@given(case=mmas_cases(), base=st.integers(min_value=1, max_value=3))
def test_stagnation_limit_stretched_by_patience(case, base):
    strategy = case[0]
    assert strategy.stagnation_limit(base) == base * strategy.params.mmas_patience


class TestStrategyRegistry:
    def test_registry_matches_config_names(self):
        assert tuple(sorted(STRATEGIES)) == tuple(sorted(STRATEGY_NAMES))

    def test_resolve_known_and_unknown(self):
        assert resolve_strategy("as") is AntSystemStrategy
        assert resolve_strategy("mmas") is MaxMinAntSystem
        with pytest.raises(ConfigError):
            resolve_strategy("acs")

    def test_mmas_requires_decay_below_one(self):
        params = ACOParams(decay=1.0)
        with pytest.raises(ConfigError):
            make_strategy("mmas", params, 4)
        with pytest.raises(ConfigError):
            ACOParams(strategy="mmas", decay=1.0).validate()

    def test_as_params_reject_bad_mmas_knobs(self):
        with pytest.raises(ConfigError):
            ACOParams(mmas_patience=0).validate()
        with pytest.raises(ConfigError):
            ACOParams(mmas_reinit_stagnation=0).validate()
        with pytest.raises(ConfigError):
            ACOParams(mmas_tau_min_scale=0.0).validate()

    def test_ant_system_update_matches_decay_plus_deposit(self):
        params = ACOParams()
        n = 6
        strategy = make_strategy("as", params, n)
        table = PheromoneTable(n, params)
        reference = table.copy()
        order = tuple(range(n))
        reinit = strategy.update(
            table,
            winner_order=order,
            winner_gap=3.0,
            best_order=order[::-1],
            best_gap=1.0,
            without_improvement=5,
        )
        assert not reinit  # Ant System never restarts
        reference.decay()
        reference.deposit(order, 3.0)
        assert np.array_equal(table.tau, reference.tau)
