"""Tests for the benchmark execution model."""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import FilterParams, SuiteParams
from repro.machine import amd_vega20
from repro.perf import BenchmarkResult, ExecutionModel, benchmark_results, sensitive_benchmarks
from repro.pipeline import CompilePipeline
from repro.suite import generate_suite


@pytest.fixture(scope="module")
def setup():
    machine = amd_vega20()
    suite = generate_suite(
        SuiteParams(num_benchmarks=8, num_kernels=6, regions_per_kernel=3),
        max_region_size=80,
    )
    run = CompilePipeline(
        machine,
        scheduler=SequentialACOScheduler(machine),
        filters=FilterParams(cycle_threshold=0),
    ).compile_suite(suite)
    baseline = CompilePipeline(machine, scheduler=None).compile_suite(suite)
    return machine, suite, run, baseline


class TestExecutionModel:
    def test_occupancy_helps_memory_bound_kernels(self, setup):
        _machine, suite, run, _baseline = setup
        model = ExecutionModel(unmodeled_noise=0.0)
        kernel = run.kernels[0]

        def low_occ(outcome):
            class Q:
                occupancy = 2
                length = outcome.final.length
            return Q

        def high_occ(outcome):
            class Q:
                occupancy = 10
                length = outcome.final.length
            return Q

        assert model.kernel_time_factor(kernel, low_occ) > model.kernel_time_factor(
            kernel, high_occ
        )

    def test_length_increase_slows(self, setup):
        _machine, _suite, run, _baseline = setup
        model = ExecutionModel(unmodeled_noise=0.0)
        kernel = run.kernels[0]

        def stretched(outcome):
            class Q:
                occupancy = outcome.final.occupancy
                length = outcome.final.length * 2
            return Q

        base = model.kernel_time_factor(kernel, lambda r: r.final)
        assert model.kernel_time_factor(kernel, stretched) == pytest.approx(2 * base)

    def test_throughput_positive_and_ratio_scale_free(self, setup):
        _machine, suite, run, _baseline = setup
        model = ExecutionModel(unmodeled_noise=0.0)
        results = benchmark_results(suite, run, model)
        assert len(results) == len(suite.benchmarks)
        for r in results:
            assert r.base_throughput > 0
            assert r.aco_throughput > 0

    def test_identical_schedules_have_zero_improvement(self, setup):
        _machine, suite, _run, baseline = setup
        model = ExecutionModel()
        results = benchmark_results(suite, baseline, model)
        for r in results:
            # baseline run: final == heuristic everywhere.
            assert r.improvement_pct == pytest.approx(0.0)

    def test_jitter_is_deterministic(self, setup):
        _machine, suite, run, _baseline = setup
        model = ExecutionModel(unmodeled_noise=0.05)
        a = benchmark_results(suite, run, model)
        b = benchmark_results(suite, run, model)
        assert [r.aco_throughput for r in a] == [r.aco_throughput for r in b]

    def test_jitter_bounded(self, setup):
        _machine, suite, run, _baseline = setup
        noisy = ExecutionModel(unmodeled_noise=0.05)
        clean = ExecutionModel(unmodeled_noise=0.0)
        for rn, rc in zip(
            benchmark_results(suite, run, noisy), benchmark_results(suite, run, clean)
        ):
            assert abs(rn.aco_throughput / rc.aco_throughput - 1.0) <= 0.06

    def test_significance_cut(self):
        result = BenchmarkResult("b", "k", base_throughput=100.0, aco_throughput=100.5)
        assert not result.significant
        result = BenchmarkResult("b", "k", base_throughput=100.0, aco_throughput=102.0)
        assert result.significant
        assert result.improvement_pct == pytest.approx(2.0)


class TestSensitivity:
    def test_identical_runs_are_insensitive(self, setup):
        _machine, suite, _run, baseline = setup
        sensitive = sensitive_benchmarks(suite, [baseline, baseline, baseline])
        assert sensitive == []

    def test_differing_runs_detect_sensitivity(self, setup):
        machine, suite, run, baseline = setup
        from repro.heuristics.cp_scheduler import CriticalPathListScheduler

        cp_run = CompilePipeline(
            machine, scheduler=None, baseline=CriticalPathListScheduler(machine)
        ).compile_suite(suite)
        sensitive = sensitive_benchmarks(suite, [baseline, run, cp_run])
        assert len(sensitive) >= 1
        assert len(sensitive) <= len(suite.benchmarks)
