"""Tests for the gpusim sanitizer: checked arrays and colony invariants."""

import types

import numpy as np
import pytest

from repro.aco import PheromoneTable
from repro.analysis import CheckedArray, ColonySanitizer, checked
from repro.analysis.sanitizer import sanitize_enabled, verification_enabled
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG
from repro.errors import SanitizerError
from repro.gpusim import GPUDevice, KernelAccounting
from repro.parallel import Colony, DivergencePolicy, RegionDeviceData


def _make_colony(ddg, machine, blocks=1, seed=0, sanitize=True, **gpu_overrides):
    gpu = GPUParams(blocks=blocks, **gpu_overrides)
    params = ACOParams()
    policy = DivergencePolicy.from_params(gpu)
    data = RegionDeviceData(ddg, machine, tight_ready_bound=gpu.tight_ready_list_bound)
    accounting = KernelAccounting(GPUDevice(), policy.num_wavefronts, coalesced=True)
    sanitizer = ColonySanitizer() if sanitize else None
    colony = Colony(
        data,
        params,
        policy,
        accounting,
        np.random.default_rng(seed),
        sanitizer=sanitizer,
    )
    return colony, data, params


class TestCheckedArray:
    def test_negative_scalar_index_rejected(self):
        arr = checked(np.arange(8), "buf")
        with pytest.raises(SanitizerError, match="buf"):
            arr[-1]

    def test_negative_array_index_rejected(self):
        arr = checked(np.arange(8), "buf")
        with pytest.raises(SanitizerError):
            arr[np.array([0, 2, -1])]

    def test_negative_write_index_rejected(self):
        arr = checked(np.arange(8), "buf")
        with pytest.raises(SanitizerError):
            arr[np.array([-3])] = 7

    def test_positive_and_fancy_indexing_pass(self):
        arr = checked(np.arange(12).reshape(3, 4), "buf")
        assert arr[2, 3] == 11
        assert (arr[1] == [4, 5, 6, 7]).all()
        assert (arr[np.array([0, 2]), np.array([1, 2])] == [1, 10]).all()
        assert arr[arr > 100].size == 0  # boolean masks pass

    def test_slices_untouched(self):
        arr = checked(np.arange(8), "buf")
        assert (arr[2:5] == [2, 3, 4]).all()
        assert (arr[:-1] == np.arange(7)).all()  # slice negatives are fine

    def test_view_shares_memory(self):
        base = np.zeros(4, dtype=np.int32)
        view = checked(base, "buf")
        view[1] = 9
        assert base[1] == 9
        assert isinstance(view, CheckedArray)

    def test_name_survives_finalize(self):
        arr = checked(np.arange(6).reshape(2, 3), "state")
        with pytest.raises(SanitizerError, match="state"):
            arr[0][-1]


class TestEnvGating:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not sanitize_enabled()
        assert not verification_enabled()

    def test_sanitize_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert sanitize_enabled()
        assert not verification_enabled()

    def test_verify_implies_sanitize(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        monkeypatch.setenv("REPRO_VERIFY", "true")
        assert verification_enabled()
        assert sanitize_enabled()

    def test_colony_auto_resolves_from_env(self, fig1_ddg, vega, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        colony, _, _ = _make_colony(fig1_ddg, vega, sanitize=False)
        assert colony.sanitizer is not None


class TestColonyCleanRuns:
    def test_rp_iteration_sanitized(self, fig1_ddg, vega):
        colony, _, params = _make_colony(fig1_ddg, vega)
        result = colony.run_rp_iteration(PheromoneTable(7, params).tau)
        assert sorted(result.winner_order) == list(range(7))
        assert colony.sanitizer.steps_checked == 7

    def test_ilp_iteration_sanitized(self, fig1_ddg, vega):
        colony, _, params = _make_colony(fig1_ddg, vega)
        result = colony.run_ilp_iteration(
            PheromoneTable(7, params).tau, {}, max_length=32
        )
        assert result.winner_order is not None
        assert colony.sanitizer.steps_checked > 0

    def test_sanitizer_does_not_change_results(self, fig1_ddg, vega):
        """Sanitize mode observes; the constructed schedules are identical."""
        plain, _, params = _make_colony(fig1_ddg, vega, sanitize=False, seed=3)
        sanitized, _, _ = _make_colony(fig1_ddg, vega, sanitize=True, seed=3)
        tau = PheromoneTable(7, params).tau
        assert (
            plain.run_rp_iteration(tau).winner_order
            == sanitized.run_rp_iteration(tau).winner_order
        )


class TestFaultInjection:
    def test_oversized_ready_list(self, fig1_ddg, vega):
        """Mutation: the available list claims more entries than the
        Section V-A bound sized the buffer for."""
        colony, data, _ = _make_colony(fig1_ddg, vega)
        colony._reset()
        colony.avail_len[0] = data.ready_capacity + 1
        with pytest.raises(SanitizerError, match="Section V-A bound"):
            colony.sanitizer.check_step(colony)

    def test_poison_violation(self, fig1_ddg, vega):
        """Mutation: a stale id appears beyond the list's length."""
        colony, data, _ = _make_colony(fig1_ddg, vega)
        colony._reset()
        free_slot = int(colony.avail_len[0])
        assert free_slot < data.ready_capacity
        np.asarray(colony.avail_ids)[0, free_slot] = 3
        with pytest.raises(SanitizerError, match="poison"):
            colony.sanitizer.check_step(colony)

    def test_duplicate_in_available_list(self, fig1_ddg, vega):
        """Mutation: a cross-ant write lands an id twice in one ant."""
        colony, _, _ = _make_colony(fig1_ddg, vega)
        colony._reset()
        np.asarray(colony.avail_ids)[0, 1] = np.asarray(colony.avail_ids)[0, 0]
        with pytest.raises(SanitizerError, match="aliasing|appears"):
            colony.sanitizer.check_step(colony)

    def test_negative_pred_counter(self, fig1_ddg, vega):
        colony, _, _ = _make_colony(fig1_ddg, vega)
        colony._reset()
        np.asarray(colony.pred_remaining)[0, 0] = -1
        with pytest.raises(SanitizerError, match="predecessor"):
            colony.sanitizer.check_step(colony)

    def test_non_uniform_wavefront_decision(self):
        """Mutation: one lane explores while its wavefront exploits."""
        sanitizer = ColonySanitizer()
        exploit = np.ones(128, dtype=bool)
        exploit[5] = False  # lane 5 of wavefront 0 diverges
        with pytest.raises(SanitizerError, match="wavefront 0"):
            sanitizer.check_exploit_uniform(exploit, 2, 64)
        # Uniform draws pass.
        sanitizer.check_exploit_uniform(np.zeros(128, dtype=bool), 2, 64)

    def test_winner_order_corruption(self, fig1_ddg, vega):
        """Mutation: the winning ant's order lost an instruction."""
        colony, _, params = _make_colony(fig1_ddg, vega)
        colony.run_rp_iteration(PheromoneTable(7, params).tau)
        np.asarray(colony.order_buf)[0, 0] = np.asarray(colony.order_buf)[0, 1]
        with pytest.raises(SanitizerError, match="incomplete or duplicated"):
            colony.sanitizer.check_iteration_end(colony, winner=0)

    def test_aliased_rows_rejected_at_layout_audit(self, fig1_ddg, vega):
        """Mutation: two ants' rows share memory (stride-0 broadcast)."""
        colony, data, _ = _make_colony(fig1_ddg, vega)
        fake = types.SimpleNamespace(
            num_ants=colony.num_ants,
            data=data,
            avail_ids=np.broadcast_to(
                np.zeros(data.ready_capacity, dtype=np.int32),
                (colony.num_ants, data.ready_capacity),
            ),
            avail_release=colony.avail_release,
            pred_remaining=colony.pred_remaining,
            remaining_uses=colony.remaining_uses,
            order_buf=colony.order_buf,
            cycles_buf=colony.cycles_buf,
        )
        with pytest.raises(SanitizerError, match="share state|overlap"):
            colony.sanitizer.audit_layout(fake)

    def test_wrong_capacity_rejected(self, fig1_ddg, vega):
        colony, data, _ = _make_colony(fig1_ddg, vega)
        fake = types.SimpleNamespace(
            num_ants=colony.num_ants,
            data=data,
            avail_ids=np.zeros(
                (colony.num_ants, data.ready_capacity + 2), dtype=np.int32
            ),
            avail_release=colony.avail_release,
            pred_remaining=colony.pred_remaining,
            remaining_uses=colony.remaining_uses,
            order_buf=colony.order_buf,
            cycles_buf=colony.cycles_buf,
        )
        with pytest.raises(SanitizerError, match="capacity"):
            colony.sanitizer.audit_layout(fake)

    def test_uninitialized_slot_read_caught_live(self, fig1_ddg, vega):
        """The CheckedArray wrapping catches a computed -1 index on the
        colony's own state arrays."""
        colony, _, _ = _make_colony(fig1_ddg, vega)
        colony._reset()
        bogus = int(colony.avail_len[1]) - 99  # a negative computed offset
        with pytest.raises(SanitizerError, match="avail_ids"):
            colony.avail_ids[1, bogus]
