"""Regression tests for the spawn-indexed per-ant RNG streams.

The backend-equivalence argument rests on three stream properties
(see :mod:`repro.parallel.rng`): ant ``i`` owns spawn child ``i`` of the
launch seed regardless of population size or wavefront grouping, a batch
draw equals the ant-by-ant scalar draws, and wavefront-level decisions
come from the leader lane's stream. Each is pinned here, plus the literal
draw sequence for the suite's base seed so an accidental reseeding (or a
numpy spawn-semantics change) fails loudly instead of silently breaking
cross-backend bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.parallel.rng import AntRngStreams

#: First draw of each of the first four spawn children of seed 2024.
#: Recorded once; any change means seeded schedules change everywhere.
GOLDEN_FIRST_DRAWS = (
    0.6505695732025213,
    0.12380904477931853,
    0.9211914659851209,
    0.07959297730799253,
)


class TestDrawSequenceGolden:
    def test_first_draws_are_pinned(self):
        streams = AntRngStreams(2024, 4)
        assert tuple(streams.uniform_ants()) == GOLDEN_FIRST_DRAWS

    def test_generator_seed_equals_integer_seed(self):
        # default_rng(s).spawn(n) and AntRngStreams(s, n) must agree, so the
        # scheduler may hand over either form.
        from_int = AntRngStreams(2024, 4)
        from_gen = AntRngStreams(np.random.default_rng(2024), 4)
        assert tuple(from_int.uniform_ants()) == tuple(from_gen.uniform_ants())


class TestSpawnIndexing:
    def test_ant_streams_do_not_depend_on_population_size(self):
        # The first k streams are identical for every population >= k:
        # a wider launch must not change any existing ant's draw sequence.
        narrow = AntRngStreams(7, 4)
        wide = AntRngStreams(7, 64)
        for i in range(4):
            assert narrow.generators[i].random() == wide.generators[i].random()

    def test_batch_draw_equals_scalar_draws(self):
        batch = AntRngStreams(7, 8)
        scalar = AntRngStreams(7, 8)
        for _step in range(5):
            batch_draws = batch.uniform_ants()
            scalar_draws = [scalar.uniform_ant(i) for i in range(8)]
            assert list(batch_draws) == scalar_draws

    def test_leader_draws_come_from_lane_zero_streams(self):
        streams = AntRngStreams(7, 8)
        reference = AntRngStreams(7, 8)
        leaders = streams.uniform_wavefront_leaders(2, 4)
        assert leaders[0] == reference.uniform_ant(0)
        assert leaders[1] == reference.uniform_ant(4)
        # Non-leader streams are untouched by a leader draw.
        assert streams.uniform_ant(1) == reference.uniform_ant(1)


class TestCoercion:
    def test_coerce_passes_streams_through(self):
        streams = AntRngStreams(7, 4)
        assert AntRngStreams.coerce(streams, 4) is streams

    def test_coerce_wraps_seeds_and_generators(self):
        assert isinstance(AntRngStreams.coerce(7, 4), AntRngStreams)
        assert isinstance(
            AntRngStreams.coerce(np.random.default_rng(7), 4), AntRngStreams
        )

    def test_coerce_rejects_mismatched_population(self):
        streams = AntRngStreams(7, 4)
        with pytest.raises(ConfigError):
            AntRngStreams.coerce(streams, 8)

    def test_rejects_empty_population_and_bad_geometry(self):
        with pytest.raises(ConfigError):
            AntRngStreams(7, 0)
        with pytest.raises(ConfigError):
            AntRngStreams(7, 8).uniform_wavefront_leaders(3, 4)
