"""Run-bundle recording: round-trip, leniency, and recording-off identity.

The recorder must be a pure observer: with no ambient recorder installed
every hook is a single ``None`` check, so a recorded run and an unrecorded
run of the same seed produce bit-identical schedules. A saved bundle must
round-trip through :func:`repro.obs.record.load_bundle` losslessly, two
recordings of the same seeded run must be byte-for-byte equal on disk, and
a bundle truncated mid-write (crash) must still load — degrading to
warnings that the differ surfaces as a partial-diff notice, mirroring
``read_trace_lenient``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import GPUParams
from repro.ddg import DDG
from repro.errors import TelemetryError
from repro.machine import amd_vega20
from repro.obs.diff import diff_bundles, render_report
from repro.obs.record import (
    BUNDLE_SCHEMA,
    RunRecorder,
    load_bundle,
    recording_scope,
    span_tree_payload,
)
from repro.parallel import ParallelACOScheduler
from repro.profile import SpanProfiler, profile_session
from repro.telemetry import Telemetry
from strategies import make_region

GPU = GPUParams(blocks=1)

REGION = ("reduce", 3, 30)
SEED = 11


def _run(telemetry=None, profiler=None, backend="vectorized"):
    scheduler = ParallelACOScheduler(
        amd_vega20(), gpu_params=GPU, backend=backend, telemetry=telemetry
    )
    ddg = DDG(make_region(*REGION))
    if profiler is not None:
        with profile_session(profiler):
            return scheduler.schedule(ddg, seed=SEED)
    return scheduler.schedule(ddg, seed=SEED)


def _record_run(path, draws="digest", with_spans=False):
    recorder = RunRecorder(draws=draws)
    profiler = SpanProfiler() if with_spans else None
    with recording_scope(recorder):
        _run(telemetry=Telemetry(sink=recorder.sink), profiler=profiler)
    if profiler is not None:
        recorder.set_spans(span_tree_payload(profiler.root))
    return recorder.save(str(path))


def _fingerprint(result):
    return (
        tuple(result.schedule.order),
        tuple(result.schedule.cycles),
        result.schedule.length,
        result.rp_cost_value,
    )


class TestRoundTrip:
    def test_record_load_round_trip(self, tmp_path):
        path = _record_run(tmp_path / "bundle", with_spans=True)
        bundle = load_bundle(path)
        assert bundle.warnings == []
        assert bundle.manifest["bundle_schema"] == BUNDLE_SCHEMA
        assert bundle.manifest["draws"] == "digest"
        assert set(bundle.parts) == {
            "events.jsonl",
            "metrics.json",
            "spans.json",
            "schedules.json",
            "rng.jsonl",
        }
        assert len(bundle.events) == bundle.manifest["events"] > 0
        assert len(bundle.schedules) == bundle.manifest["schedules"] > 0
        assert len(bundle.rng) == bundle.manifest["rng_entries"] > 0
        assert bundle.metrics is not None
        assert bundle.spans is not None and bundle.spans["category"] == "root"

    def test_schedules_capture_the_search_result(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        bundle = load_bundle(path)
        search = [s for s in bundle.schedules if s["kind"] == "search"]
        assert len(search) == 1
        record = search[0]
        assert record["region"] == "reduce_30"
        assert record["seed"] == SEED
        assert record["backend"] == "vectorized"
        assert sorted(record["order"]) == list(range(30))

    def test_rng_entries_key_on_region_pass_iteration(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        bundle = load_bundle(path)
        for entry in bundle.rng:
            assert entry["region"] == "reduce_30"
            assert entry["pass"] in (1, 2)
            assert entry["iteration"] >= 0
            assert entry["ants"]
            for lane in entry["ants"].values():
                assert lane["n"] > 0
                assert len(lane["d"]) == 16
                assert "v" not in lane  # digest level omits raw values

    def test_full_level_stores_raw_draws(self, tmp_path):
        path = _record_run(tmp_path / "bundle", draws="full")
        bundle = load_bundle(path)
        lane = next(iter(bundle.rng[0]["ants"].values()))
        assert len(lane["v"]) == lane["n"]
        assert all(0.0 <= v < 1.0 for v in lane["v"])

    def test_off_level_skips_the_rng_part(self, tmp_path):
        path = _record_run(tmp_path / "bundle", draws="off")
        bundle = load_bundle(path)
        assert "rng.jsonl" not in bundle.parts
        assert bundle.rng == []
        assert bundle.warnings == []  # declared off, so no "missing" warning

    def test_unknown_draw_level_rejected(self):
        with pytest.raises(TelemetryError):
            RunRecorder(draws="everything")


class TestDiffSelf:
    def test_diff_against_self_is_identical(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        report = diff_bundles(path, path)
        assert report["identical"]
        assert report["byte_identical"]
        assert not report["partial"]
        assert report["first_divergence"] is None
        assert report["first_event_divergence"] is None
        assert {lv["status"] for lv in report["levels"]} <= {
            "identical",
            "skipped",
        }
        assert "verdict: identical (byte-for-byte)" in render_report(report)

    def test_two_recordings_of_one_seed_are_byte_identical(self, tmp_path):
        path_a = _record_run(tmp_path / "a")
        path_b = _record_run(tmp_path / "b")
        for name in sorted(os.listdir(path_a)):
            with open(os.path.join(path_a, name), "rb") as ha:
                with open(os.path.join(path_b, name), "rb") as hb:
                    assert ha.read() == hb.read(), name
        report = diff_bundles(path_a, path_b)
        assert report["identical"] and report["byte_identical"]


class TestRecordingOffIdentity:
    def test_recording_does_not_perturb_the_run(self):
        bare = _run()
        recorder = RunRecorder(draws="full")
        with recording_scope(recorder):
            recorded = _run(telemetry=Telemetry(sink=recorder.sink))
        assert _fingerprint(bare) == _fingerprint(recorded)

    def test_no_ambient_recorder_outside_scope(self):
        from repro.obs.record import get_recorder

        recorder = RunRecorder()
        with recording_scope(recorder):
            assert get_recorder() is recorder
        assert get_recorder() is None


class TestLenientLoading:
    def test_truncated_events_warns_and_diffs_partially(self, tmp_path):
        path_a = _record_run(tmp_path / "a")
        path_b = _record_run(tmp_path / "b")
        events = os.path.join(path_b, "events.jsonl")
        with open(events) as handle:
            lines = handle.readlines()
        with open(events, "w") as handle:
            handle.writelines(lines[:-3])
            handle.write('{"v": 1, "seq": 9')  # mid-write crash artifact
        bundle = load_bundle(path_b)
        assert any("skipped 1 malformed line" in w for w in bundle.warnings)
        assert any("manifest declares" in w for w in bundle.warnings)
        report = diff_bundles(path_a, path_b)
        assert report["partial"]
        assert any(w.startswith("B: events.jsonl") for w in report["warnings"])
        rendered = render_report(report)
        assert "partial diff — bundle warnings:" in rendered

    def test_missing_rng_part_warns(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        os.remove(os.path.join(path, "rng.jsonl"))
        bundle = load_bundle(path)
        assert "rng.jsonl: missing" in bundle.warnings

    def test_missing_manifest_warns_but_loads(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        os.remove(os.path.join(path, "manifest.json"))
        bundle = load_bundle(path)
        assert any("manifest.json" in w for w in bundle.warnings)
        assert bundle.events  # the trace still loads

    def test_future_schema_warns(self, tmp_path):
        path = _record_run(tmp_path / "bundle")
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["bundle_schema"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        bundle = load_bundle(path)
        assert any("bundle_schema" in w for w in bundle.warnings)

    def test_not_a_directory_raises(self, tmp_path):
        target = tmp_path / "not-a-bundle"
        target.write_text("hello")
        with pytest.raises(TelemetryError):
            load_bundle(str(target))


class TestBenchHistory:
    """Satellite: the append-only BENCH_history.jsonl trajectory."""

    @staticmethod
    def _payload(git="abc123def", value=2.5):
        return {
            "name": "table2",
            "scale": "test",
            "fingerprint": {"git": git, "cost_model_digest": "cm01"},
            "metrics": {
                "speedup": {"value": value, "unit": "x", "direction": "higher"},
                "notes": {"value": 0, "unit": "", "direction": "info"},
            },
        }

    def test_append_and_load_round_trip(self, tmp_path):
        from repro.bench.history import append_history, load_history

        path = str(tmp_path / "BENCH_history.jsonl")
        entry = append_history(path, [self._payload()])
        assert entry["git"] == "abc123def"
        assert entry["scale"] == "test"
        append_history(path, [self._payload(git="fedcba987", value=2.0)])
        entries, skipped = load_history(path)
        assert skipped == 0
        assert [e["git"] for e in entries] == ["abc123def", "fedcba987"]

    def test_same_tree_appends_are_byte_identical(self, tmp_path):
        from repro.bench.history import append_history

        path = str(tmp_path / "hist.jsonl")
        append_history(path, [self._payload()])
        append_history(path, [self._payload()])
        with open(path) as handle:
            first, second = handle.read().splitlines()
        assert first == second  # wall-clock-free: reruns are byte-equal

    def test_trend_flags_regressions(self, tmp_path):
        from repro.bench.history import append_history, load_history, render_trend

        path = str(tmp_path / "hist.jsonl")
        append_history(path, [self._payload(value=2.5)])
        append_history(path, [self._payload(git="fedcba987", value=2.0)])
        entries, _ = load_history(path)
        trend = render_trend(entries, scale="test")
        assert "table2.speedup" in trend
        assert "!" in trend  # 'higher' metric moved down
        assert "notes" not in trend  # info metrics are skipped

    def test_load_is_lenient(self, tmp_path):
        from repro.bench.history import append_history, load_history

        path = str(tmp_path / "hist.jsonl")
        append_history(path, [self._payload()])
        with open(path, "a") as handle:
            handle.write("{broken json\n")
        entries, skipped = load_history(path)
        assert len(entries) == 1
        assert skipped == 1
