"""Tests for repro.schedule: Schedule objects and legality validation."""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG
from repro.errors import ScheduleError
from repro.heuristics import CriticalPathHeuristic, list_schedule, order_schedule
from repro.heuristics.list_scheduler import schedule_in_order
from repro.machine import amd_vega20
from repro.schedule import Schedule, validate_schedule
from repro.schedule.validate import is_legal

from conftest import ddgs


class TestSchedule:
    def test_basic(self, fig1_region):
        schedule = Schedule(fig1_region, [0, 1, 2, 3, 5, 6, 7])
        assert schedule.length == 8
        assert schedule.num_stalls == 1
        assert schedule.cycle_of(4) == 5

    def test_order_follows_cycles(self, fig1_region):
        schedule = Schedule(fig1_region, [6, 5, 4, 3, 2, 1, 0])
        assert schedule.order == (6, 5, 4, 3, 2, 1, 0)

    def test_from_order(self, fig1_region):
        schedule = Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6])
        assert schedule.length == 7
        assert schedule.num_stalls == 0
        assert schedule.order == (2, 3, 5, 0, 1, 4, 6)

    def test_from_order_rejects_non_permutation(self, fig1_region):
        with pytest.raises(ScheduleError):
            Schedule.from_order(fig1_region, [0, 0, 1, 2, 3, 4, 5])

    def test_wrong_arity_rejected(self, fig1_region):
        with pytest.raises(ScheduleError):
            Schedule(fig1_region, [0, 1, 2])

    def test_negative_cycle_rejected(self, fig1_region):
        with pytest.raises(ScheduleError):
            Schedule(fig1_region, [-1, 0, 1, 2, 3, 4, 5])

    def test_equality(self, fig1_region):
        a = Schedule(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        b = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        assert a == b
        assert hash(a) == hash(b)


class TestValidate:
    def test_legal_figure1_schedule(self, fig1_ddg, vega):
        # The paper's pass-2 Ant 2 schedule: C D _ _ A B E _ F G? No —
        # use a schedule built by the latency-aware list scheduler.
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        validate_schedule(schedule, fig1_ddg, vega)

    def test_latency_violation_detected(self, fig1_ddg, vega):
        # C (lat 5) at 0 and F at 1 violates the flow latency.
        cycles = [2, 3, 0, 4, 8, 1, 9]
        with pytest.raises(ScheduleError):
            validate_schedule(Schedule(fig1_ddg.region, cycles), fig1_ddg, vega)

    def test_order_only_mode_ignores_latency(self, fig1_ddg, vega):
        schedule = Schedule.from_order(fig1_ddg.region, [2, 3, 5, 0, 1, 4, 6])
        validate_schedule(schedule, fig1_ddg, vega, respect_latencies=False)
        with pytest.raises(ScheduleError):
            validate_schedule(schedule, fig1_ddg, vega)  # has latency gaps

    def test_dependence_order_always_enforced(self, fig1_ddg):
        # G before its operands is illegal even latency-blind.
        schedule = Schedule.from_order(fig1_ddg.region, [6, 0, 1, 2, 3, 4, 5])
        with pytest.raises(ScheduleError):
            validate_schedule(schedule, fig1_ddg, respect_latencies=False)

    def test_issue_width_enforced(self, fig1_ddg, vega):
        cycles = [0, 0, 1, 2, 10, 11, 13]  # two instructions in cycle 0
        with pytest.raises(ScheduleError):
            validate_schedule(Schedule(fig1_ddg.region, cycles), fig1_ddg, vega)

    def test_is_legal(self, fig1_ddg, vega):
        good = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        assert is_legal(good, fig1_ddg, vega)
        bad = Schedule.from_order(fig1_ddg.region, [6, 0, 1, 2, 3, 4, 5])
        assert not is_legal(bad, fig1_ddg, vega, respect_latencies=False)

    def test_equal_but_distinct_region_accepted(self, fig1_ddg, vega):
        """Region comparison is by value: a schedule built against an equal
        (but not identical) region object must validate."""
        from repro.ir.builder import figure1_region

        other = figure1_region()
        assert other is not fig1_ddg.region and other == fig1_ddg.region
        schedule = list_schedule(fig1_ddg, vega, heuristic=CriticalPathHeuristic())
        validate_schedule(Schedule(other, schedule.cycles), fig1_ddg, vega)

    def test_mismatched_region_rejected_with_names(self, fig1_ddg, chain_region):
        ddg = DDG(chain_region)
        schedule = Schedule(chain_region, [0, 2, 4, 6])
        with pytest.raises(ScheduleError, match="chain"):
            validate_schedule(schedule, fig1_ddg)

    def test_incomplete_schedule_rejected_not_crashing(self, fig1_ddg):
        """A forged schedule missing instructions must raise ScheduleError,
        not crash on downstream arithmetic (empty per-cycle max)."""

        class Forged:
            region = fig1_ddg.region
            cycles = ()

        with pytest.raises(ScheduleError, match="7 instruction"):
            validate_schedule(Forged(), fig1_ddg)

    def test_forged_order_rejected(self, fig1_ddg):
        class Forged:
            region = fig1_ddg.region
            cycles = tuple(range(7))
            order = (0, 0, 1, 2, 3, 4, 5)

        with pytest.raises(ScheduleError, match="permutation"):
            validate_schedule(Forged(), fig1_ddg)


class TestScheduleInOrder:
    def test_preserves_order_and_inserts_stalls(self, fig1_ddg):
        schedule = schedule_in_order(fig1_ddg, [2, 3, 0, 1, 5, 4, 6])
        assert schedule.order == (2, 3, 0, 1, 5, 4, 6)
        validate_schedule(schedule, fig1_ddg)

    def test_rejects_non_permutation(self, fig1_ddg):
        with pytest.raises(ScheduleError):
            schedule_in_order(fig1_ddg, [0, 1])

    @given(ddgs())
    @settings(max_examples=30, deadline=None)
    def test_always_legal(self, ddg):
        order = order_schedule(ddg, heuristic=CriticalPathHeuristic()).order
        schedule = schedule_in_order(ddg, order)
        validate_schedule(schedule, ddg)
