"""Hostile-workload generators and the adversarial miner's archive.

The generators are fixture factories: their output must be byte-stable
(golden fingerprints pinned here), structurally valid (the DDG builder is
the arbiter), and actually hostile in the advertised way (a pressure
cliff really pins its loads live, a chain really serializes). The
committed reproducers in ``tests/data/adversarial/`` are regression
tests for the miner's loss criterion: each one must still parse to the
recorded fingerprint and still make the ACO search lose to the list
heuristic.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.ddg import DDG
from repro.ir import format_region, parse_region
from repro.machine import amd_vega20
from repro.rp.liveness import peak_pressure
from repro.schedule.schedule import Schedule
from repro.suite.adversarial import (
    MINE_FAMILIES,
    MinedCase,
    aco_loss,
    make_candidate,
    mine,
)
from repro.suite.hostile import (
    HOSTILE_DEFAULT_SIZES,
    HOSTILE_FAMILIES,
    HOSTILE_NAMES,
    hostile_region,
    region_fingerprint,
)

ADVERSARIAL_DIR = os.path.join(os.path.dirname(__file__), "data", "adversarial")

#: Byte-stability contract: fingerprints of every family at seed 0 and its
#: default size. A change here means existing mined reproducers, benches,
#: and archived fixtures silently describe different programs.
GOLDEN_FINGERPRINTS = {
    "fanout": "baae0d86675fca0e",
    "giant": "d5cc82464d9a3b74",
    "long_chain": "bec6cfd4d35427f0",
    "pressure_cliff": "77453cc821a3bcd3",
}


class TestGenerators:
    def test_registry_is_complete_and_sorted(self):
        assert HOSTILE_NAMES == tuple(sorted(HOSTILE_FAMILIES))
        assert set(GOLDEN_FINGERPRINTS) == set(HOSTILE_NAMES)
        assert set(HOSTILE_DEFAULT_SIZES) == set(HOSTILE_NAMES)

    @pytest.mark.parametrize("family", HOSTILE_NAMES)
    def test_golden_fingerprints(self, family):
        region = hostile_region(family, seed=0)
        assert len(region) == HOSTILE_DEFAULT_SIZES[family]
        assert region_fingerprint(region) == GOLDEN_FINGERPRINTS[family]

    @pytest.mark.parametrize("family", HOSTILE_NAMES)
    def test_deterministic_and_seed_sensitive(self, family):
        first = hostile_region(family, seed=5, size=32)
        again = hostile_region(family, seed=5, size=32)
        other = hostile_region(family, seed=6, size=32)
        assert region_fingerprint(first) == region_fingerprint(again)
        # Every family embeds seeded randomness (latencies at minimum), so
        # distinct seeds must produce distinct programs.
        assert region_fingerprint(first) != region_fingerprint(other)

    @pytest.mark.parametrize("family", HOSTILE_NAMES)
    def test_regions_build_valid_ddgs(self, family):
        region = hostile_region(family, seed=0, size=24)
        ddg = DDG(region)
        assert ddg.num_instructions == 24
        # Program order must be a legal schedule of its own DDG.
        order = tuple(range(24))
        Schedule.from_order(region, order)

    @pytest.mark.parametrize("family", HOSTILE_NAMES)
    def test_ir_round_trip_preserves_fingerprint(self, family):
        region = hostile_region(family, seed=3, size=20)
        parsed = parse_region(format_region(region))
        assert region_fingerprint(parsed) == region_fingerprint(region)

    def test_pressure_cliff_really_cliffs(self):
        # Program order of the cliff keeps every load live across the
        # serial consumer chain: the peak must scale with the region, not
        # stay flat like a well-behaved workload.
        small = hostile_region("pressure_cliff", seed=0, size=16)
        large = hostile_region("pressure_cliff", seed=0, size=64)
        peak_of = lambda r: sum(
            peak_pressure(Schedule.from_order(r, tuple(range(len(r))))).values()
        )
        assert peak_of(large) > 2 * peak_of(small)

    def test_long_chain_is_fully_serial(self):
        ddg = DDG(hostile_region("long_chain", seed=0, size=16))
        # Exactly one topological order exists: each node feeds the next.
        for src in range(ddg.num_instructions - 1):
            assert any(dst == src + 1 for dst, _ in ddg.successors[src])

    def test_fanout_is_mostly_ready_at_once(self):
        ddg = DDG(hostile_region("fanout", seed=0, size=48))
        rootless = sum(1 for preds in ddg.predecessors if not preds)
        dependents = sum(1 for preds in ddg.predecessors if preds)
        assert rootless <= 4
        assert dependents >= 44

    def test_unknown_family_rejected(self):
        with pytest.raises(Exception):
            hostile_region("nonexistent", seed=0)

    @pytest.mark.slow
    @pytest.mark.parametrize("family", HOSTILE_NAMES)
    def test_seed_sweep_stays_valid(self, family):
        seen = set()
        for seed in range(12):
            region = hostile_region(family, seed=seed, size=40)
            DDG(region)
            seen.add(region_fingerprint(region))
        # The sweep must not collapse onto a handful of programs.
        assert len(seen) >= 10


class TestMinerArchive:
    def _cases(self):
        paths = sorted(glob.glob(os.path.join(ADVERSARIAL_DIR, "*.json")))
        assert paths, "no mined reproducers committed under %s" % ADVERSARIAL_DIR
        for path in paths:
            with open(path) as handle:
                yield path, MinedCase.from_json(handle.read())

    def test_archive_fingerprints_still_match(self):
        for path, case in self._cases():
            assert case.family in MINE_FAMILIES, path
            assert region_fingerprint(case.region) == case.fingerprint, path

    def test_archive_losses_still_reproduce(self):
        machine = amd_vega20()
        for path, case in self._cases():
            loss = aco_loss(case.region, machine, case.strategy, case.seed)
            assert loss is not None, "%s no longer loses" % path
            assert loss["heuristic_length"] == case.heuristic_length, path
            assert loss["aco_length"] == case.aco_length, path
            assert loss["heuristic_rp_cost"] == case.heuristic_rp_cost, path
            assert loss["aco_rp_cost"] == case.aco_rp_cost, path

    def test_archive_json_is_canonical(self):
        # to_json must be the identity on committed files, so regenerated
        # archives never churn the diff.
        for path, case in self._cases():
            with open(path) as handle:
                assert handle.read() == case.to_json(), path

    def test_make_candidate_covers_both_registries(self):
        hostile = make_candidate("pressure_cliff", seed=0, size=16)
        pattern = make_candidate("gemm_tile", seed=0, size=16)
        assert len(hostile) == 16
        assert len(pattern) == 16

    @pytest.mark.slow
    def test_miner_smoke_finds_a_case(self):
        cases = mine(families=("gemm_tile",), seeds=2, size=44, max_cases=1)
        assert len(cases) == 1
        case = cases[0]
        assert case.aco_length > case.heuristic_length
        assert case.aco_rp_cost >= case.heuristic_rp_cost
        # The reproducer is self-contained: parse, re-fingerprint, re-lose.
        round_tripped = json.loads(case.to_json())
        assert round_tripped["fingerprint"] == case.fingerprint
        assert aco_loss(case.region, strategy=case.strategy, seed=case.seed)
