"""First-divergence localization: the differ finds exactly where runs fork.

Two acceptance demos from the differential-observability issue:

* two runs differing only in **one injected RNG perturbation** (a wrapped
  generator flips a single draw of a single ant) must be localized to the
  exact first divergent iteration / ant / draw index, with both values in
  the report;
* the vectorized engine vs. the loop engine with a **deliberately broken
  lane primitive** (the per-ant heuristic row degraded to a constant) must
  be localized to the first iteration where the decisions forked.

Plus unit coverage of the prefix-digest bisection and the CLI exit codes.
"""

from __future__ import annotations

import json
import sys

import pytest

import repro.parallel.scheduler as scheduler_mod
from repro.config import GPUParams
from repro.ddg import DDG
from repro.machine import amd_vega20
from repro.obs.diff import (
    diff_bundles,
    first_divergent_index,
    main as diff_main,
    render_report,
    write_report,
)
from repro.obs.record import RunRecorder, recording_scope
from repro.parallel import ParallelACOScheduler
from repro.parallel.loop import LoopColony
from repro.parallel.rng import AntRngStreams
from repro.telemetry import Telemetry
from strategies import make_region

GPU = GPUParams(blocks=1)
SEED = 11

#: The injected perturbation: ant 2's sixth draw (index 5) is flipped.
TARGET_ANT = 2
TARGET_DRAW = 5


def _record(tmp_path, name, backend="vectorized", draws="full"):
    recorder = RunRecorder(draws=draws)
    scheduler = ParallelACOScheduler(
        amd_vega20(),
        gpu_params=GPU,
        backend=backend,
        telemetry=Telemetry(sink=recorder.sink),
    )
    ddg = DDG(make_region("reduce", 3, 30))
    with recording_scope(recorder):
        scheduler.schedule(ddg, seed=SEED)
    return recorder.save(str(tmp_path / name))


class _FlippedGen:
    """Wraps one ant's generator; flips exactly one U[0,1) draw."""

    def __init__(self, inner, flip_at):
        self._inner = inner
        self._flip_at = flip_at
        self._calls = 0

    def random(self, *args, **kwargs):
        value = self._inner.random(*args, **kwargs)
        self._calls += 1
        if self._calls == self._flip_at:
            return 1.0 - value
        return value

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _PerturbedStreams(AntRngStreams):
    """AntRngStreams with the target ant's lane wrapped in _FlippedGen."""

    def __init__(self, seed, num_ants):
        super().__init__(seed, num_ants)
        generators = list(self.generators)
        generators[TARGET_ANT] = _FlippedGen(
            generators[TARGET_ANT], TARGET_DRAW + 1
        )
        self.generators = tuple(generators)


class TestBisection:
    def test_identical_sequences(self):
        items = [{"seq": i} for i in range(10)]
        assert first_divergent_index(items, list(items)) is None
        assert first_divergent_index([], []) is None

    @pytest.mark.parametrize("where", [0, 1, 7, 63, 64, 99])
    def test_single_mutation_found_exactly(self, where):
        a = [{"seq": i, "v": 0} for i in range(100)]
        b = [dict(item) for item in a]
        b[where]["v"] = 1
        assert first_divergent_index(a, b) == where

    def test_strict_prefix_diverges_at_the_shorter_length(self):
        a = [{"seq": i} for i in range(10)]
        assert first_divergent_index(a, a[:4]) == 4
        assert first_divergent_index(a[:4], a) == 4
        assert first_divergent_index([], a) == 0


class TestRngPerturbationDemo:
    """Acceptance demo 1: one flipped draw, localized to ant + draw index."""

    @pytest.fixture()
    def report(self, tmp_path, monkeypatch):
        path_a = _record(tmp_path, "clean")
        monkeypatch.setattr(scheduler_mod, "AntRngStreams", _PerturbedStreams)
        path_b = _record(tmp_path, "perturbed")
        return diff_bundles(path_a, path_b)

    def test_divergence_localized_to_the_exact_draw(self, report):
        assert not report["identical"]
        fd = report["first_divergence"]
        assert fd is not None
        assert fd["level"] == "rng-draws"
        assert fd["region"] == "reduce_30"
        assert fd["ant"] == TARGET_ANT
        assert fd["draw_index"] == TARGET_DRAW
        # The perturbation is value -> 1 - value, so the two reported
        # draws must be exact complements.
        assert fd["a_value"] + fd["b_value"] == pytest.approx(1.0, abs=1e-12)

    def test_report_names_the_iteration_key(self, report):
        fd = report["first_divergence"]
        assert fd["pass"] in (1, 2)
        assert fd["iteration"] >= 0
        assert fd["trace_id"]
        rendered = render_report(report)
        assert "first divergence [rng-draws]:" in rendered
        assert "ant: %d" % TARGET_ANT in rendered
        assert "draw_index: %d" % TARGET_DRAW in rendered

    def test_digest_level_still_localizes_the_ant_lane(
        self, tmp_path, monkeypatch
    ):
        path_a = _record(tmp_path, "clean-digest", draws="digest")
        monkeypatch.setattr(scheduler_mod, "AntRngStreams", _PerturbedStreams)
        path_b = _record(tmp_path, "perturbed-digest", draws="digest")
        fd = diff_bundles(path_a, path_b)["first_divergence"]
        assert fd["level"] == "rng-draws"
        assert fd["ant"] == TARGET_ANT
        assert "draw_index" not in fd
        assert "draws=full" in fd["note"]


class TestBrokenLanePrimitiveDemo:
    """Acceptance demo 2: loop engine with a broken per-ant heuristic row."""

    @pytest.fixture()
    def report(self, tmp_path, monkeypatch):
        path_a = _record(tmp_path, "vectorized", backend="vectorized")

        def broken_eta_row(self, ant, cand, valid, primary):
            # The bug under test: the scalar engine drops the heuristic
            # term, collapsing every candidate's desirability to tau alone.
            import numpy as np

            return np.ones(cand.shape[0], dtype=np.float64)

        monkeypatch.setattr(LoopColony, "_eta_row", broken_eta_row)
        path_b = _record(tmp_path, "broken-loop", backend="loop")
        return diff_bundles(path_a, path_b)

    def test_engines_diverge_and_are_localized(self, report):
        assert not report["identical"]
        fd = report["first_divergence"]
        assert fd is not None
        # The broken heuristic changes *decisions*, so the fork shows up at
        # decision granularity (iterations or finer), never only in the
        # coarse aggregates.
        assert fd["level"] in ("iterations", "rng-draws")
        statuses = {lv["level"]: lv["status"] for lv in report["levels"]}
        assert statuses["summary-metrics"] == "divergent"
        assert statuses["iterations"] == "divergent"

    def test_first_divergent_iteration_is_named(self, report):
        iterations = next(
            lv for lv in report["levels"] if lv["level"] == "iterations"
        )
        context = iterations["detail"]["context"]
        assert context["event"] == "iteration"
        assert context["region"] == "reduce_30"
        assert context["pass_index"] in (1, 2)
        assert context["iteration"] >= 0
        fe = report["first_event_divergence"]
        assert fe is not None and fe["index"] >= 0


class TestCli:
    def test_identical_exits_zero(self, tmp_path, capsys):
        path = _record(tmp_path, "bundle", draws="digest")
        assert diff_main([path, path]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_exits_one_and_writes_json(
        self, tmp_path, monkeypatch, capsys
    ):
        path_a = _record(tmp_path, "clean")
        monkeypatch.setattr(scheduler_mod, "AntRngStreams", _PerturbedStreams)
        path_b = _record(tmp_path, "perturbed")
        out = str(tmp_path / "report.json")
        assert diff_main([path_a, path_b, "--json", out]) == 1
        assert "DIVERGENT" in capsys.readouterr().out
        with open(out) as handle:
            report = json.load(handle)
        assert report["first_divergence"]["ant"] == TARGET_ANT

    def test_missing_bundle_exits_two(self, tmp_path, capsys):
        assert diff_main([str(tmp_path / "nope"), str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_quiet_suppresses_output(self, tmp_path, capsys):
        path = _record(tmp_path, "bundle", draws="off")
        assert diff_main([path, path, "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_report_json_is_byte_stable(self, tmp_path):
        path = _record(tmp_path, "bundle", draws="digest")
        report = diff_bundles(path, path)
        out_a = str(tmp_path / "a.json")
        out_b = str(tmp_path / "b.json")
        write_report(report, out_a)
        write_report(diff_bundles(path, path), out_b)
        with open(out_a, "rb") as ha, open(out_b, "rb") as hb:
            assert ha.read() == hb.read()
