"""Tests for the compile pipeline, filters and statistics."""

import pytest
from hypothesis import given, settings

from repro.aco import SequentialACOScheduler
from repro.config import FilterParams, SuiteParams
from repro.ddg import DDG
from repro.machine import amd_vega20, simple_test_target
from repro.pipeline import (
    CompilePipeline,
    FilterDecision,
    InvocationFilter,
    PostSchedulingFilter,
    improvement_statistics,
    suite_statistics,
)
from repro.schedule import validate_schedule
from repro.suite import generate_suite

from conftest import ddgs, make_region


@pytest.fixture(scope="module")
def small_suite():
    return generate_suite(
        SuiteParams(num_benchmarks=6, num_kernels=6, regions_per_kernel=3),
        max_region_size=60,
    )


@pytest.fixture(scope="module")
def vega_module():
    return amd_vega20()


@pytest.fixture(scope="module")
def aco_run(small_suite, vega_module):
    pipeline = CompilePipeline(
        vega_module,
        scheduler=SequentialACOScheduler(vega_module),
        filters=FilterParams(cycle_threshold=0),
    )
    return pipeline.compile_suite(small_suite)


class TestInvocationFilter:
    def test_rp_room_invokes(self):
        f = InvocationFilter(FilterParams(cycle_threshold=21))
        assert f.should_invoke(10, 5, 100, 100)

    def test_length_gap_over_threshold_invokes(self):
        f = InvocationFilter(FilterParams(cycle_threshold=21))
        assert f.should_invoke(5, 5, 130, 100)
        assert not f.should_invoke(5, 5, 120, 100)  # gap 20 <= 21

    def test_skip_decision_kinds(self):
        f = InvocationFilter(FilterParams(cycle_threshold=21))
        assert f.decision_for_skip(100, 100) is FilterDecision.SKIPPED_OPTIMAL
        assert f.decision_for_skip(110, 100) is FilterDecision.SKIPPED_THRESHOLD


class TestPostSchedulingFilter:
    def _filter(self):
        return PostSchedulingFilter(FilterParams())

    def test_keeps_strict_improvement(self):
        assert self._filter().keep_aco(10, 90, 8, 100)

    def test_keeps_fair_trade(self):
        # +1 occupancy buys 21 cycles of slack.
        assert self._filter().keep_aco(9, 120, 8, 100)
        assert not self._filter().keep_aco(9, 122, 8, 100)

    def test_reverts_zero_gain_longer(self):
        assert not self._filter().keep_aco(8, 101, 8, 100)

    def test_keeps_zero_gain_shorter(self):
        assert self._filter().keep_aco(8, 99, 8, 100)

    def test_occupancy_loss_only_kept_if_shorter(self):
        assert self._filter().keep_aco(7, 50, 8, 100)
        assert not self._filter().keep_aco(7, 150, 8, 100)

    def test_paper_example_63_cycles_for_3_steps(self):
        assert self._filter().keep_aco(11, 163, 8, 100)
        assert not self._filter().keep_aco(11, 164, 8, 100)


class TestCompileRegion:
    def test_baseline_only(self, vega_module):
        pipeline = CompilePipeline(vega_module, scheduler=None)
        ddg = DDG(make_region("reduce", 3, 30))
        outcome = pipeline.compile_region(ddg)
        assert outcome.final == outcome.heuristic
        assert not outcome.aco_invoked
        validate_schedule(outcome.schedule, ddg, vega_module)
        assert outcome.scheduling_seconds > 0

    def test_skip_when_optimal(self, vega_module):
        pipeline = CompilePipeline(
            vega_module, scheduler=SequentialACOScheduler(vega_module)
        )
        # A trivially serial region: the heuristic is provably optimal.
        ddg = DDG(make_region("scan", 1, 4))
        outcome = pipeline.compile_region(ddg)
        if outcome.decision in (
            FilterDecision.SKIPPED_OPTIMAL,
            FilterDecision.SKIPPED_THRESHOLD,
        ):
            assert outcome.aco is None

    def test_final_never_dominated_by_heuristic(self, vega_module):
        """The post filter guarantees the shipped schedule is never strictly
        worse than the heuristic on both axes."""
        pipeline = CompilePipeline(
            vega_module,
            scheduler=SequentialACOScheduler(vega_module),
            filters=FilterParams(cycle_threshold=0),
        )
        for seed in range(5):
            ddg = DDG(make_region("gemm_tile", seed, 40))
            outcome = pipeline.compile_region(ddg, seed=seed)
            worse_occ = outcome.final.occupancy < outcome.heuristic.occupancy
            worse_len = outcome.final.length > outcome.heuristic.length
            assert not (worse_occ and worse_len)

    @given(ddgs(max_size=30))
    @settings(max_examples=8, deadline=None)
    def test_shipped_schedule_always_legal(self, ddg):
        machine = simple_test_target()
        pipeline = CompilePipeline(
            machine,
            scheduler=SequentialACOScheduler(machine),
            filters=FilterParams(cycle_threshold=0),
        )
        outcome = pipeline.compile_region(ddg, seed=1)
        validate_schedule(outcome.schedule, ddg, machine)


class TestCompileSuite:
    def test_all_regions_compiled(self, aco_run, small_suite):
        assert len(aco_run.kernels) == 6
        total = sum(len(k.regions) for k in aco_run.kernels)
        assert total == small_suite.num_regions

    def test_total_time_decomposes(self, aco_run):
        assert aco_run.total_seconds == pytest.approx(
            aco_run.base_seconds + aco_run.scheduling_seconds
        )
        assert aco_run.base_seconds > 0

    def test_kernel_occupancy_is_min(self, aco_run):
        for kernel in aco_run.kernels:
            assert kernel.final_occupancy == min(
                r.final.occupancy for r in kernel.regions
            )

    def test_kernel_outcome_lookup(self, aco_run):
        name = aco_run.kernels[0].kernel.name
        assert aco_run.kernel_outcome(name).kernel.name == name
        with pytest.raises(Exception):
            aco_run.kernel_outcome("nope")

    def test_weighted_length_positive(self, aco_run):
        for kernel in aco_run.kernels:
            assert kernel.weighted_length(lambda r: r.final) > 0


class TestStats:
    def test_suite_statistics(self, aco_run):
        stats = suite_statistics(aco_run, num_benchmarks=6)
        assert stats.num_regions == 18
        assert stats.pass2_regions >= stats.pass1_regions >= 0
        if stats.pass1_regions:
            assert stats.max_pass1_size >= stats.avg_pass1_size

    def test_improvements_nonnegative_overall(self, aco_run):
        stats = improvement_statistics(aco_run)
        # The post filter forbids occupancy losses at kernel level.
        assert stats.overall_occupancy_increase_pct >= 0
        assert stats.max_length_reduction_pct >= 0

    def test_baseline_run_has_zero_improvement(self, small_suite, vega_module):
        pipeline = CompilePipeline(vega_module, scheduler=None)
        run = pipeline.compile_suite(small_suite)
        stats = improvement_statistics(run)
        assert stats.overall_occupancy_increase_pct == 0
        assert stats.overall_length_reduction_pct == 0
        assert stats.pass1_regions == 0


class TestPipelineVerifyMode:
    def test_verified_compile_reports_zero_violations(self, vega_module):
        """A small suite compiled under --verify: every region's shipped
        schedule recertifies, and the telemetry trace records it."""
        from repro.aco import SequentialACOScheduler as Seq
        from repro.config import ACOParams
        from repro.telemetry import MemorySink, Telemetry

        suite = generate_suite(
            SuiteParams(num_benchmarks=2, num_kernels=2, regions_per_kernel=2),
            max_region_size=40,
        )
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        pipeline = CompilePipeline(
            vega_module,
            scheduler=Seq(
                vega_module, params=ACOParams(max_iterations=3), verify=True
            ),
            telemetry=telemetry,
            verify=True,
        )
        assert pipeline.verify_enabled
        run = pipeline.compile_suite(suite)
        assert len(run.kernels) == 2
        events = sink.by_type("verify")
        assert events, "verify events missing from the trace"
        assert all(e["violations"] == 0 for e in events)
        assert all(e["checks"] > 0 for e in events)

    def test_verify_catches_corrupt_quality_claim(self, vega_module, fig1_ddg):
        """Fault injection through the pipeline: a tampered final quality
        claim must fail recertification."""
        from repro.analysis import verify_schedule
        from repro.errors import VerificationError

        pipeline = CompilePipeline(vega_module, scheduler=None, verify=True)
        outcome = pipeline.compile_region(fig1_ddg)
        tampered = outcome.final.__class__(
            length=outcome.final.length,
            peak_pressure=tuple(
                (cls, value + 1) for cls, value in outcome.final.peak_pressure
            ),
            aprp=outcome.final.aprp,
            occupancy=outcome.final.occupancy,
            rp_cost=outcome.final.rp_cost,
        )
        report = verify_schedule(
            outcome.schedule,
            fig1_ddg,
            vega_module,
            expected_peak=tampered.pressure_dict,
        )
        assert "claimed-peak" in report.codes()
        with pytest.raises(VerificationError):
            report.raise_if_failed()
