"""Tests for the deterministic GPU fault model and the deadline budget."""

import pytest

from repro.config import ConfigError, ResilienceParams
from repro.errors import (
    CorruptionDetected,
    DeadlineExceeded,
    DeviceHangError,
    DeviceOOMError,
    InjectedFault,
    KernelLaunchError,
    ReproError,
    ResilienceError,
)
from repro.gpusim.device import GPUDevice
from repro.gpusim.faults import (
    DEFAULT_CHAOS_RATES,
    FAULT_CLASSES,
    FaultPlan,
    FaultyDevice,
    chaos_seed_from_env,
    fault_plan_from_env,
)
from repro.resilience.watchdog import DeadlineBudget


class TestFaultPlan:
    def test_deterministic_per_site(self):
        a = FaultPlan.from_seed(99)
        b = FaultPlan.from_seed(99)
        for attempt in range(20):
            assert a.launch_fails("r", 1, attempt) == b.launch_fails("r", 1, attempt)
            assert a.hang_iteration("r", 2, attempt) == b.hang_iteration(
                "r", 2, attempt
            )

    def test_sites_independent(self):
        """Different sites draw independently — a plan is not all-or-nothing."""
        plan = FaultPlan(seed=3, rates={"launch": 0.5})
        decisions = {
            plan.launch_fails("r%d" % i, p, a)
            for i in range(10)
            for p in (1, 2)
            for a in range(3)
        }
        assert decisions == {True, False}

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=1, rates={})
        assert not any(
            plan.launch_fails("r", 1, a)
            or plan.preallocation_fails("r", a)
            or plan.transfer_corrupted("r", 1, a)
            or plan.hang_iteration("r", 1, a) is not None
            for a in range(50)
        )

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=1, rates={c: 1.0 for c in FAULT_CLASSES})
        assert plan.launch_fails("r", 1, 0)
        assert plan.preallocation_fails("r", 0)
        assert plan.transfer_corrupted("r", 1, 0)
        assert plan.hang_iteration("r", 1, 0) in (0, 1, 2)

    def test_seed_changes_decisions(self):
        plans = [FaultPlan(seed=s, rates={"launch": 0.5}) for s in range(40)]
        fired = {p.launch_fails("r", 1, 0) for p in plans}
        assert fired == {True, False}

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(seed=1, rates={"meltdown": 0.5})

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(seed=1, rates={"launch": 1.5})

    def test_default_rates_cover_all_classes(self):
        assert set(DEFAULT_CHAOS_RATES) == set(FAULT_CLASSES)
        assert FaultPlan.from_seed(7).rates == DEFAULT_CHAOS_RATES


class TestFaultyDevice:
    def _faulty(self, rates):
        return FaultyDevice(GPUDevice(), FaultPlan(seed=1, rates=rates))

    def test_launch_failure_costs_the_launch(self):
        faulty = self._faulty({"launch": 1.0})
        with pytest.raises(KernelLaunchError) as info:
            faulty.check_launch("r", 1, 0)
        assert info.value.seconds == faulty.device.cost.launch_overhead
        assert info.value.fault_class == "launch"

    def test_oom_before_any_launch(self):
        faulty = self._faulty({"oom": 1.0})
        with pytest.raises(DeviceOOMError) as info:
            faulty.check_preallocation("r", 0, requested_bytes=4096)
        assert info.value.seconds == 0.0

    def test_corruption_is_silent_until_copy_back(self):
        faulty = self._faulty({"corruption": 1.0})
        # The fault layer only reports the corruption; raising
        # CorruptionDetected at copy-back is the scheduler's job.
        assert faulty.transfer_corrupted("r", 1, 0)

    def test_clean_device_passes_everything(self):
        faulty = self._faulty({})
        faulty.check_launch("r", 1, 0)
        faulty.check_preallocation("r", 0)
        assert not faulty.transfer_corrupted("r", 1, 0)
        assert faulty.hang_iteration("r", 1, 0) is None


class TestExceptionTaxonomy:
    def test_hierarchy(self):
        for exc_type in (
            KernelLaunchError,
            DeviceOOMError,
            CorruptionDetected,
            DeviceHangError,
        ):
            assert issubclass(exc_type, InjectedFault)
            assert issubclass(exc_type, ResilienceError)
            assert issubclass(exc_type, ReproError)

    def test_fault_classes_match_taxonomy(self):
        classes = {
            KernelLaunchError.fault_class,
            DeviceOOMError.fault_class,
            CorruptionDetected.fault_class,
            DeviceHangError.fault_class,
        }
        assert classes == set(FAULT_CLASSES)


class TestEnvironment:
    def test_chaos_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_seed_from_env() is None
        assert fault_plan_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "123")
        assert chaos_seed_from_env() == 123
        assert fault_plan_from_env().seed == 123

    def test_bad_chaos_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "banana")
        with pytest.raises(ConfigError):
            chaos_seed_from_env()

    def test_resilience_params_from_env(self, monkeypatch):
        for name in ("REPRO_DEADLINE", "REPRO_MAX_RETRIES", "REPRO_CHAOS", "REPRO_DEGRADE"):
            monkeypatch.delenv(name, raising=False)
        assert not ResilienceParams.from_env().active
        monkeypatch.setenv("REPRO_DEADLINE", "0.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_CHAOS", "9")
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        params = ResilienceParams.from_env()
        assert params.active
        assert params.deadline_seconds == 0.5
        assert params.max_retries == 5
        assert params.chaos_seed == 9
        assert not params.degrade

    def test_active_rule(self):
        assert not ResilienceParams().active
        assert ResilienceParams(deadline_seconds=1.0).active
        assert ResilienceParams(chaos_seed=1).active
        assert ResilienceParams(enabled=True).active
        assert not ResilienceParams(chaos_seed=1, enabled=False).active


class TestDeadlineBudget:
    def test_unlimited(self):
        budget = DeadlineBudget()
        budget.charge(1e9)
        assert not budget.limited
        assert not budget.exhausted
        assert budget.remaining == float("inf")
        budget.require("anything")  # never raises

    def test_charges_accumulate(self):
        budget = DeadlineBudget(1.0)
        budget.charge(0.4)
        budget.charge(0.4)
        assert budget.spent == pytest.approx(0.8)
        assert budget.remaining == pytest.approx(0.2)
        assert not budget.exhausted
        budget.charge(0.4)
        assert budget.exhausted
        with pytest.raises(DeadlineExceeded):
            budget.require("pass 2")

    def test_invalid(self):
        with pytest.raises(ConfigError):
            DeadlineBudget(0.0)
        with pytest.raises(ConfigError):
            DeadlineBudget(1.0).charge(-1.0)
