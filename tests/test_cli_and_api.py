"""Tests for the CLI and the public package surface."""

import subprocess
import sys

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_from_docstring(self):
        """The package docstring's quickstart must actually run."""
        from repro import DDG, ParallelACOScheduler, RegionBuilder, amd_vega20
        from repro.config import GPUParams

        b = RegionBuilder("example")
        b.inst("global_load", defs=["v0"])
        b.inst("global_load", defs=["v1"])
        b.inst("v_add_f32", defs=["v2"], uses=["v0", "v1"])
        region = b.live_out("v2").build()

        machine = amd_vega20()
        result = ParallelACOScheduler(
            machine, gpu_params=GPUParams(blocks=1)
        ).schedule(DDG(region))
        assert result.schedule.length >= 3

    def test_error_hierarchy(self):
        from repro.errors import (
            ConfigError,
            DDGError,
            GPUSimError,
            IRError,
            MachineModelError,
            ParseError,
            PipelineError,
            ReproError,
            ScheduleError,
        )

        for exc in (
            IRError,
            ParseError,
            DDGError,
            ScheduleError,
            MachineModelError,
            ConfigError,
            GPUSimError,
            PipelineError,
        ):
            assert issubclass(exc, ReproError)


class TestCLI:
    def test_list(self):
        from repro.cli import main

        assert main(["list"]) == 0

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["nope", "--scale", "test"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        from repro.cli import main

        assert main(["table1", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "finished in" in out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "table1" in result.stdout
        assert "fig4" in result.stdout


class TestCSVExport:
    def test_to_csv_roundtrip(self):
        from repro.experiments import ExperimentTable

        table = ExperimentTable("My Title (scale=test)", ("A", "B"))
        table.add_row("x,with,commas", 1)
        table.add_note("hello")
        csv_text = table.to_csv()
        assert csv_text.startswith("# My Title")
        assert '"x,with,commas",1' in csv_text
        assert "# note: hello" in csv_text

    def test_csv_filename_is_safe(self):
        from repro.experiments import ExperimentTable

        table = ExperimentTable("Table 3.a: parallel speedup! (scale=x)", ("A",))
        name = table.csv_filename()
        assert name.endswith(".csv")
        assert " " not in name and "!" not in name and "(" not in name

    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["table1", "--scale", "test", "--csv", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == 1
        assert "Measured" in files[0].read_text()
