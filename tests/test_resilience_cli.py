"""CLI exit-code contract for resilience runs.

* exit 0 + a ``[resilience]`` warning summary on stderr when every region
  shipped (degraded compiles included);
* exit 3 when any region was unrecoverable (``--no-degrade``).
"""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _sandbox_env(monkeypatch):
    # main() writes the resilience knobs into os.environ; pre-seeding them
    # via monkeypatch guarantees restoration after each test.
    for name in ("REPRO_DEADLINE", "REPRO_MAX_RETRIES", "REPRO_CHAOS", "REPRO_DEGRADE"):
        monkeypatch.setenv(name, "")
    # Each real CLI invocation is a fresh process; drop the process-wide
    # experiment-context cache so each test compiles under its own knobs.
    from repro.experiments import common

    monkeypatch.setattr(common, "_CONTEXTS", {})


def test_clean_run_exits_zero_without_summary(capsys):
    rc = main(["table1", "--scale", "test"])
    assert rc == 0
    assert "[resilience]" not in capsys.readouterr().err


def test_chaos_run_recovers_and_warns(capsys):
    rc = main(["table1", "--scale", "test", "--chaos", "42", "--max-retries", "2"])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert "[resilience]" in captured.err
    assert "fault(s)" in captured.err


def test_no_degrade_chaos_run_exits_three(capsys):
    rc = main(["table1", "--scale", "test", "--chaos", "42", "--no-degrade"])
    captured = capsys.readouterr()
    assert rc == 3
    assert "UNRECOVERABLE" in captured.err


def test_unknown_experiment_still_exits_two():
    assert main(["not-an-experiment"]) == 2
