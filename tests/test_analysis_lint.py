"""Tests for the AST determinism lint (python -m repro.analysis.lint)."""

import os

from repro.analysis.lint import default_target, lint_file, main, run_lint


def _lint_source(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(str(path), str(tmp_path))


def _codes(violations):
    return [v.code for v in violations]


class TestRepoIsClean:
    def test_repro_package_passes(self):
        violations = run_lint([default_target()])
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_main_exit_zero(self, capsys):
        assert main([default_target()]) == 0
        assert "clean" in capsys.readouterr().out


class TestRNGRules:
    def test_global_random_in_kernel_path(self, tmp_path):
        violations = _lint_source(
            tmp_path, "aco/bad.py", "import random\nx = random.random()\n"
        )
        assert _codes(violations) == ["RNG001"]

    def test_global_random_outside_kernel_path_allowed(self, tmp_path):
        violations = _lint_source(
            tmp_path, "viz/ok.py", "import random\nx = random.random()\n"
        )
        assert violations == []

    def test_injected_random_instance_allowed(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "aco/good.py",
            "import random\nrng = random.Random(7)\nx = rng.random()\n",
        )
        assert violations == []

    def test_legacy_numpy_random_anywhere(self, tmp_path):
        violations = _lint_source(
            tmp_path, "viz/bad.py", "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert _codes(violations) == ["RNG002"]

    def test_unseeded_default_rng_in_kernel_path(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "parallel/bad.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert _codes(violations) == ["RNG003"]

    def test_seeded_default_rng_allowed(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "parallel/good.py",
            "import numpy as np\nrng = np.random.default_rng(42)\n",
        )
        assert violations == []

    def test_global_seeding_forbidden(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "viz/bad.py",
            "import random\nimport numpy as np\n"
            "random.seed(0)\nnp.random.seed(0)\n",
        )
        assert _codes(violations) == ["RNG004", "RNG004"]


class TestTelemetryRules:
    def test_telemetry_importing_rng(self, tmp_path):
        violations = _lint_source(tmp_path, "telemetry/bad.py", "import random\n")
        assert _codes(violations) == ["TEL001"]

    def test_telemetry_importing_scheduler_state(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "telemetry/bad.py",
            "from ..parallel.colony import Colony\n",
        )
        assert _codes(violations) == ["TEL002"]

    def test_telemetry_importing_errors_allowed(self, tmp_path):
        violations = _lint_source(
            tmp_path, "telemetry/ok.py", "from ..errors import ReproError\n"
        )
        assert violations == []


class TestWallClockRule:
    def test_wall_clock_in_kernel_path(self, tmp_path):
        violations = _lint_source(
            tmp_path, "gpusim/bad.py", "import time\nt = time.time()\n"
        )
        assert _codes(violations) == ["TIME001"]

    def test_wall_clock_in_cli_allowed(self, tmp_path):
        violations = _lint_source(
            tmp_path, "cli.py", "import time\nt = time.time()\n"
        )
        assert violations == []


class TestSuppressionsAndErrors:
    def test_lint_allow_comment(self, tmp_path):
        violations = _lint_source(
            tmp_path,
            "aco/excused.py",
            "import random\nx = random.random()  # lint: allow\n",
        )
        assert violations == []

    def test_syntax_error_reported(self, tmp_path):
        violations = _lint_source(tmp_path, "aco/broken.py", "def f(:\n")
        assert _codes(violations) == ["SYN001"]

    def test_main_nonzero_on_violation(self, tmp_path, capsys):
        path = tmp_path / "rp" / "bad.py"
        path.parent.mkdir(parents=True)
        path.write_text("import random\nrandom.shuffle([1])\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out

    def test_single_file_target(self, tmp_path):
        path = tmp_path / "loose.py"
        path.write_text("import numpy as np\nnp.random.seed(1)\n")
        violations = run_lint([str(path)])
        assert _codes(violations) == ["RNG004"]

    def test_module_is_runnable(self):
        """python -m repro.analysis.lint must stay invokable (CI uses it)."""
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.abspath(default_target()))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
