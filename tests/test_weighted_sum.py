"""Tests for the weighted-sum (single-pass) ACO variant."""

import pytest

from repro.aco import SequentialACOScheduler, WeightedSumACOScheduler
from repro.ddg import DDG
from repro.ir.registers import VGPR
from repro.machine import simple_test_target
from repro.rp import peak_pressure
from repro.schedule import validate_schedule

from conftest import make_region


class TestWeightedSum:
    def test_zero_weight_is_pure_ilp(self, fig1_ddg, tiny_machine):
        result = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.0).schedule(
            fig1_ddg, seed=2
        )
        validate_schedule(result.schedule, fig1_ddg, tiny_machine)
        assert result.length == 8  # the unconstrained optimum

    def test_positive_weight_buys_pressure(self, fig1_ddg, tiny_machine):
        result = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.001).schedule(
            fig1_ddg, seed=2
        )
        validate_schedule(result.schedule, fig1_ddg, tiny_machine)
        assert result.peak[VGPR] == 3
        assert result.length == 9

    def test_matches_two_pass_on_figure1(self, fig1_ddg, tiny_machine):
        weighted = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.001).schedule(
            fig1_ddg, seed=2
        )
        two_pass = SequentialACOScheduler(tiny_machine).schedule(fig1_ddg, seed=2)
        assert weighted.peak[VGPR] == two_pass.peak[VGPR]
        assert weighted.length == two_pass.length

    def test_reported_peak_consistent(self, tiny_machine):
        ddg = DDG(make_region("reduce", 4, 25))
        result = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.01).schedule(
            ddg, seed=1
        )
        assert result.peak == peak_pressure(result.schedule)
        validate_schedule(result.schedule, ddg, tiny_machine)

    def test_negative_weight_rejected(self, tiny_machine):
        with pytest.raises(ValueError):
            WeightedSumACOScheduler(tiny_machine, pressure_weight=-1.0)

    def test_trace_and_accounting(self, fig1_ddg, tiny_machine):
        result = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.001).schedule(
            fig1_ddg, seed=2
        )
        assert result.result.invoked
        assert len(result.result.trace) == result.result.iterations
        assert result.seconds > 0

    def test_deterministic(self, tiny_machine):
        ddg = DDG(make_region("sort", 8, 20))
        a = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.001).schedule(ddg, seed=5)
        b = WeightedSumACOScheduler(tiny_machine, pressure_weight=0.001).schedule(ddg, seed=5)
        assert a.schedule == b.schedule
