"""Tests for the fleet's shard partitioner and the deterministic merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet import merge_shard_results, partition_shards


class TestPartitionShards:
    def test_round_robin_in_slot_order(self):
        assert partition_shards([0, 1, 2, 3, 4], 2) == [[0, 2, 4], [1, 3]]
        assert partition_shards([0, 1, 2, 3, 4, 5], 3) == [[0, 3], [1, 4], [2, 5]]

    def test_recovery_subset_keeps_slot_order(self):
        # After a crash the pending set is sparse; the queues still walk it
        # in slot order, independent of how recovery produced it.
        assert partition_shards([1, 4, 7], 2) == [[1, 7], [4]]

    def test_extra_shards_idle_empty(self):
        assert partition_shards([0, 1], 4) == [[0], [1], [], []]

    def test_zero_shards_rejected(self):
        with pytest.raises(FleetError):
            partition_shards([0, 1], 0)

    @given(
        num_slots=st.integers(min_value=0, max_value=40),
        num_shards=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_is_a_partition(self, num_slots, num_shards):
        queues = partition_shards(list(range(num_slots)), num_shards)
        assert len(queues) == num_shards
        flat = [slot for queue in queues for slot in queue]
        assert sorted(flat) == list(range(num_slots))
        for queue in queues:
            assert queue == sorted(queue)  # slot order preserved per shard


class TestMergeShardResults:
    def test_any_arrival_order_merges_to_slot_order(self):
        resolved = [(2, "c"), (0, "a"), (3, "d"), (1, "b")]
        assert merge_shard_results(4, resolved) == ["a", "b", "c", "d"]

    def test_duplicate_slot_rejected(self):
        with pytest.raises(FleetError, match="twice"):
            merge_shard_results(2, [(0, "a"), (0, "b"), (1, "c")])

    def test_missing_slot_rejected(self):
        with pytest.raises(FleetError, match="missing"):
            merge_shard_results(3, [(0, "a"), (2, "c")])

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(FleetError, match="out-of-range"):
            merge_shard_results(2, [(0, "a"), (2, "c")])
        with pytest.raises(FleetError, match="out-of-range"):
            merge_shard_results(2, [(-1, "a"), (0, "b")])

    def test_negative_count_rejected(self):
        with pytest.raises(FleetError):
            merge_shard_results(-1, [])

    def test_empty_merge(self):
        assert merge_shard_results(0, []) == []

    @given(permutation=st.permutations(list(range(12))))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_arrival_order_invariant(self, permutation):
        resolved = [(slot, "v%d" % slot) for slot in permutation]
        assert merge_shard_results(12, resolved) == [
            "v%d" % slot for slot in range(12)
        ]
