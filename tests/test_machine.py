"""Tests for repro.machine: occupancy tables, APRP and the targets."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineModelError
from repro.ir.registers import SGPR, VGPR
from repro.machine import MachineModel, OccupancyTable, amd_vega20, simple_test_target


class TestOccupancyTable:
    def test_paper_example(self):
        """Section II-A: PRP <= 24 VGPRs -> occupancy 10; [25, 28] -> 9."""
        table = amd_vega20().table_for(VGPR)
        assert table.occupancy(1) == 10
        assert table.occupancy(24) == 10
        assert table.occupancy(25) == 9
        assert table.occupancy(28) == 9
        assert table.occupancy(29) == 8

    def test_paper_aprp_example(self):
        table = amd_vega20().table_for(VGPR)
        for prp in range(1, 25):
            assert table.aprp(prp) == 24
        for prp in range(25, 29):
            assert table.aprp(prp) == 28

    def test_over_budget(self):
        table = OccupancyTable([(4, 2), (8, 1)])
        assert table.occupancy(9) == 0
        assert table.aprp(9) == 9  # own value: stays monotone past the table

    def test_validation(self):
        with pytest.raises(MachineModelError):
            OccupancyTable([])
        with pytest.raises(MachineModelError):
            OccupancyTable([(4, 2), (3, 1)])  # non-increasing pressure
        with pytest.raises(MachineModelError):
            OccupancyTable([(4, 2), (8, 2)])  # non-decreasing occupancy
        with pytest.raises(MachineModelError):
            OccupancyTable([(4, 0)])  # zero occupancy
        with pytest.raises(MachineModelError):
            OccupancyTable([(0, 4)])  # zero pressure
        with pytest.raises(MachineModelError):
            OccupancyTable([(4, 2)]).occupancy(-1)

    def test_properties(self):
        table = OccupancyTable([(4, 3), (6, 2), (8, 1)])
        assert table.max_occupancy == 3
        assert table.max_pressure == 8

    @given(st.integers(min_value=0, max_value=300))
    def test_aprp_invariants(self, pressure):
        """APRP is idempotent and occupancy-preserving (its defining
        properties), and never below the pressure it adjusts."""
        table = amd_vega20().table_for(VGPR)
        adjusted = table.aprp(pressure)
        assert adjusted >= pressure
        assert table.aprp(adjusted) == adjusted
        assert table.occupancy(adjusted) == table.occupancy(pressure)

    @given(st.integers(min_value=0, max_value=299))
    def test_occupancy_monotone(self, pressure):
        table = amd_vega20().table_for(VGPR)
        assert table.occupancy(pressure) >= table.occupancy(pressure + 1)


class TestMachineModel:
    def test_vega_shape(self):
        vega = amd_vega20()
        assert vega.issue_width == 1
        assert vega.wavefront_size == 64
        assert vega.max_occupancy == 10
        assert set(vega.classes()) == {VGPR, SGPR}

    def test_occupancy_is_min_across_classes(self):
        vega = amd_vega20()
        assert vega.occupancy_for_pressure({VGPR: 24, SGPR: 16}) == 10
        assert vega.occupancy_for_pressure({VGPR: 25, SGPR: 16}) == 9
        assert vega.occupancy_for_pressure({VGPR: 10, SGPR: 200}) < 10

    def test_missing_class_means_zero_pressure(self):
        vega = amd_vega20()
        assert vega.occupancy_for_pressure({}) == 10

    def test_aprp_dict(self):
        vega = amd_vega20()
        aprp = vega.aprp({VGPR: 20})
        assert aprp[VGPR] == 24
        assert SGPR in aprp

    def test_table_for_unknown_class_raises(self):
        tiny = MachineModel("t", {VGPR: OccupancyTable([(4, 1)])})
        with pytest.raises(MachineModelError):
            tiny.table_for(SGPR)

    def test_validation(self):
        with pytest.raises(MachineModelError):
            MachineModel("bad", {VGPR: OccupancyTable([(4, 1)])}, issue_width=0)
        with pytest.raises(MachineModelError):
            MachineModel("bad", {})

    def test_simple_test_target(self):
        tiny = simple_test_target()
        assert tiny.max_occupancy == 4
        assert tiny.occupancy_for_pressure({VGPR: 3}) == 4
        assert tiny.occupancy_for_pressure({VGPR: 4}) == 3

    def test_sgpr_table_has_sane_top(self):
        table = amd_vega20().table_for(SGPR)
        assert table.occupancy(80) == 10
        assert table.max_pressure == 800
