#!/usr/bin/env python3
"""A close-up of the Section V optimizations on one large region.

Schedules a single big region on the simulated GPU repeatedly, toggling
each memory and divergence optimization off one at a time, and prints the
modelled ACO scheduling time of each configuration — a per-region version
of the paper's Tables 4.a/4.b and 6.

Run:  python examples/divergence_study.py
"""

import random

from repro import DDG, AMDMaxOccupancyScheduler, ParallelACOScheduler, amd_vega20
from repro.config import GPUParams, replace_params
from repro.suite.patterns import pattern_region


def timed(machine, ddg, heuristic, gpu):
    scheduler = ParallelACOScheduler(machine, gpu_params=gpu)
    result = scheduler.schedule(
        ddg, seed=3, initial_order=heuristic.order, reference_schedule=heuristic
    )
    return result


def main():
    machine = amd_vega20()
    region = pattern_region("reduce", random.Random(11), 140)
    ddg = DDG(region)
    heuristic = AMDMaxOccupancyScheduler(machine).schedule(ddg)
    base_gpu = GPUParams(blocks=8)

    configs = [
        ("all optimizations on (paper configuration)", base_gpu),
        ("no SoA layout (AoS + device mallocs)", replace_params(base_gpu, soa_layout=False)),
        ("trivial ready-list bound (arrays sized n)",
         replace_params(base_gpu, tight_ready_list_bound=False)),
        ("unbatched host->device copies", replace_params(base_gpu, batched_transfers=False)),
        ("thread-level explore/exploit draws",
         replace_params(base_gpu, wavefront_level_choice=False)),
        ("optional stalls in every wavefront",
         replace_params(base_gpu, stall_wavefront_fraction=1.0)),
        ("optional stalls in no wavefront",
         replace_params(base_gpu, stall_wavefront_fraction=0.0)),
        ("no early wavefront termination",
         replace_params(base_gpu, early_wavefront_termination=False)),
        ("single guiding heuristic everywhere",
         replace_params(base_gpu, heuristic_diversity=False)),
    ]

    print("region %s: %d instructions\n" % (region.name, len(region)))
    print("%-48s %>10s %>8s %>8s" .replace(">", "") % ("configuration", "ACO us", "length", "occup."))
    baseline_seconds = None
    for name, gpu in configs:
        result = timed(machine, ddg, heuristic, gpu)
        seconds = result.seconds * 1e6
        occ = machine.occupancy_for_pressure(result.peak)
        delta = ""
        if baseline_seconds is None:
            baseline_seconds = seconds
        else:
            delta = "  (%+.0f%%)" % (100.0 * (seconds - baseline_seconds) / baseline_seconds)
        print("%-48s %8.1f %8d %8d%s" % (name, seconds, result.length, occ, delta))


if __name__ == "__main__":
    main()
