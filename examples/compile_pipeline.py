#!/usr/bin/env python3
"""The selective compile pipeline on a miniature rocPRIM-like suite.

Generates a small synthetic suite, compiles it three times — AMD baseline
only, sequential ACO on the CPU, parallel ACO on the simulated GPU — and
prints the Section VI-style summary: how many regions each ACO pass
processed, the quality improvements, and the compile-time comparison
(Table 5's shape: sequential ACO costs much more compile time than
parallel ACO for the same schedules).

Run:  python examples/compile_pipeline.py
"""

import time

from repro import CompilePipeline, SequentialACOScheduler, ParallelACOScheduler, amd_vega20, generate_suite
from repro.config import FilterParams, GPUParams, SuiteParams
from repro.pipeline import improvement_statistics, suite_statistics


def main():
    machine = amd_vega20()
    suite = generate_suite(
        SuiteParams(num_benchmarks=12, num_kernels=10, regions_per_kernel=4),
        max_region_size=150,
    )
    print(
        "suite: %d benchmarks, %d kernels, %d scheduling regions\n"
        % (len(suite.benchmarks), len(suite.kernels), suite.num_regions)
    )

    filters = FilterParams(cycle_threshold=21)
    configs = [
        ("baseline (AMD only)", None),
        ("sequential ACO", SequentialACOScheduler(machine)),
        ("parallel ACO", ParallelACOScheduler(machine, gpu_params=GPUParams(blocks=6))),
    ]

    runs = {}
    for name, scheduler in configs:
        pipeline = CompilePipeline(machine, scheduler=scheduler, filters=filters)
        started = time.time()
        runs[name] = pipeline.compile_suite(suite)
        print(
            "%-22s modelled compile time %7.2f s  (base %.2f + scheduling %.4f)"
            "   [host wall %.1fs]"
            % (
                name,
                runs[name].total_seconds,
                runs[name].base_seconds,
                runs[name].scheduling_seconds,
                time.time() - started,
            )
        )

    base_total = runs["baseline (AMD only)"].total_seconds
    for name in ("sequential ACO", "parallel ACO"):
        overhead = 100.0 * (runs[name].total_seconds - base_total) / base_total
        print("%-22s compile-time overhead over baseline: +%.1f%%" % (name, overhead))

    par = runs["parallel ACO"]
    stats = suite_statistics(par, len(suite.benchmarks))
    print(
        "\nACO processed %d regions in pass 1 (avg size %.1f) and %d in pass 2 "
        "(avg size %.1f)"
        % (
            stats.pass1_regions,
            stats.avg_pass1_size,
            stats.pass2_regions,
            stats.avg_pass2_size,
        )
    )
    imp = improvement_statistics(par)
    print(
        "quality vs AMD baseline: occupancy %+.2f%% overall (max %+.0f%% on a "
        "kernel), schedule length %+.2f%% overall (max %+.1f%% on a region)"
        % (
            imp.overall_occupancy_increase_pct,
            imp.max_occupancy_increase_pct,
            imp.overall_length_reduction_pct,
            imp.max_length_reduction_pct,
        )
    )


if __name__ == "__main__":
    main()
