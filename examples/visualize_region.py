#!/usr/bin/env python3
"""Inspecting a region: DOT export, timelines, sparklines, certified optima.

Builds the paper's Figure 1 example, writes its dependence graph as
Graphviz DOT (render with ``dot -Tpng figure1.dot -o figure1.png``), shows
the greedy and ACO schedules as text timelines with register-pressure
sparklines, and certifies both against the exact branch-and-bound optima.

Run:  python examples/visualize_region.py
"""

from repro import DDG, AMDMaxOccupancyScheduler, SequentialACOScheduler, simple_test_target
from repro.exact import min_length_schedule, min_pressure_order
from repro.ir.builder import figure1_region
from repro.ir.registers import VGPR
from repro.rp import peak_pressure
from repro.schedule import Schedule
from repro.viz import compare_schedules, ddg_to_dot, pressure_sparkline, schedule_timeline


def main():
    machine = simple_test_target()
    region = figure1_region()
    ddg = DDG(region)

    dot = ddg_to_dot(ddg)
    with open("figure1.dot", "w") as handle:
        handle.write(dot)
    print("wrote figure1.dot (%d nodes, critical path highlighted)\n" % len(region))

    greedy = AMDMaxOccupancyScheduler(machine).schedule(ddg)
    aco = SequentialACOScheduler(machine).schedule(ddg, seed=42).schedule

    print("Greedy baseline:")
    print(schedule_timeline(greedy))
    print(pressure_sparkline(greedy, VGPR))
    print("Two-pass ACO:")
    print(schedule_timeline(aco))
    print(pressure_sparkline(aco, VGPR))

    print(compare_schedules(greedy, aco, names=("greedy", "aco")))

    # Certify against the exact optima (7 instructions: instant).
    order, _cost = min_pressure_order(ddg, machine)
    best_prp = peak_pressure(Schedule.from_order(region, order))[VGPR]
    optimal = min_length_schedule(ddg, machine, {VGPR: best_prp})
    print(
        "exact optima: min PRP %d; min length at that PRP %d cycles"
        % (best_prp, optimal.length)
    )
    print(
        "ACO found PRP %d, length %d -> %s"
        % (
            peak_pressure(aco)[VGPR],
            aco.length,
            "optimal on both objectives"
            if peak_pressure(aco)[VGPR] == best_prp and aco.length == optimal.length
            else "not optimal",
        )
    )


if __name__ == "__main__":
    main()
