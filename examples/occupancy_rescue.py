#!/usr/bin/env python3
"""Occupancy rescue: the scenario that motivates the paper's two-pass ACO.

A reduction front end (a wide wave of long-latency loads feeding a
combine tree) floods the ready list
with loads. A greedy non-stalling scheduler must keep issuing
loads while the combines wait on memory latency, so live ranges pile up and the
kernel loses occupancy. The two-pass ACO scheduler finds a low-pressure
order in pass 1 and then, constrained to that pressure, uses optional
stalls in pass 2 to recover schedule length — often strictly dominating the
greedy schedule.

The script also shows the post-scheduling filter's economics and the
modelled execution-time impact.

Run:  python examples/occupancy_rescue.py
"""

import random

from repro import DDG, AMDMaxOccupancyScheduler, ParallelACOScheduler, amd_vega20, evaluate_schedule
from repro.config import GPUParams
from repro.pipeline.filters import PostSchedulingFilter
from repro.config import FilterParams
from repro.suite.patterns import reduction_region


def main():
    machine = amd_vega20()
    region = reduction_region(random.Random(11), 140, "reduce_140")
    ddg = DDG(region)

    amd = AMDMaxOccupancyScheduler(machine)
    heuristic = amd.schedule(ddg)
    hq = evaluate_schedule(heuristic, machine)
    print("Greedy AMD-style baseline:")
    print(
        "  length %d cycles, VGPR peak %d -> occupancy %d/10"
        % (hq.length, hq.pressure_dict[list(hq.pressure_dict)[-1]], hq.occupancy)
    )

    scheduler = ParallelACOScheduler(machine, gpu_params=GPUParams(blocks=8))
    result = scheduler.schedule(
        ddg, seed=1, initial_order=heuristic.order, reference_schedule=heuristic
    )
    aq = evaluate_schedule(result.schedule, machine)
    print("Two-pass parallel ACO:")
    print(
        "  length %d cycles, peak %s -> occupancy %d/10"
        % (aq.length, {str(c): v for c, v in aq.peak_pressure}, aq.occupancy)
    )
    print(
        "  pass 1: %d iterations (invoked=%s); pass 2: %d iterations (invoked=%s)"
        % (
            result.pass1.iterations,
            result.pass1.invoked,
            result.pass2.iterations,
            result.pass2.invoked,
        )
    )

    post = PostSchedulingFilter(FilterParams())
    keep = post.keep_aco(aq.occupancy, aq.length, hq.occupancy, hq.length)
    print(
        "Post-scheduling filter: occupancy %+d for %+d cycles -> %s"
        % (
            aq.occupancy - hq.occupancy,
            aq.length - hq.length,
            "keep the ACO schedule" if keep else "revert to the heuristic",
        )
    )

    # Modelled execution impact for a memory-bound kernel built from this
    # region: exposed stalls scale with 10/occupancy.
    mu = 1.5
    def exec_time(q):
        return q.length * (1.0 + 0.9 * mu * (10.0 / max(1, q.occupancy) - 1.0))

    base_time, aco_time = exec_time(hq), exec_time(aq)
    print(
        "Modelled kernel time (memory intensity %.1f): baseline %.0f units, "
        "ACO %.0f units -> %.1f%% faster"
        % (mu, base_time, aco_time, 100.0 * (base_time - aco_time) / base_time)
    )


if __name__ == "__main__":
    main()
