#!/usr/bin/env python3
"""Quickstart: schedule one region three ways.

Builds the paper's Figure 1 running example plus a custom region, then
schedules each with the AMD-style greedy baseline, the sequential two-pass
ACO scheduler (CPU) and the GPU-parallel ACO scheduler (simulated device),
printing the schedules and their quality metrics.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace quickstart.jsonl

With ``--trace`` the run also records a JSONL telemetry trace (every ACO
iteration and simulated kernel launch) and prints its profile — the
smallest end-to-end demo of the observability layer.
"""

from repro import (
    DDG,
    AMDMaxOccupancyScheduler,
    ParallelACOScheduler,
    RegionBuilder,
    SequentialACOScheduler,
    amd_vega20,
    evaluate_schedule,
    format_schedule,
    simple_test_target,
)
from repro.config import GPUParams
from repro.ir.builder import figure1_region


def build_custom_region():
    """A small load/compute block: four loads feeding a combine tree."""
    b = RegionBuilder("custom")
    for i in range(4):
        b.inst("global_load", defs=["v%d" % i])
    b.inst("v_add_f32", defs=["v4"], uses=["v0", "v1"])
    b.inst("v_add_f32", defs=["v5"], uses=["v2", "v3"])
    b.inst("v_mul_f32", defs=["v6"], uses=["v4", "v5"])
    b.inst("global_store", uses=["v6"])
    return b.build()


def show(name, schedule, machine):
    quality = evaluate_schedule(schedule, machine)
    print("--- %s ---" % name)
    print(format_schedule(schedule))
    print(
        "length %d | peak pressure %s | occupancy %d/%d\n"
        % (
            quality.length,
            {str(cls): prp for cls, prp in quality.peak_pressure},
            quality.occupancy,
            machine.max_occupancy,
        )
    )


def main():
    # The tiny test target makes the RP/ILP trade-off visible on a
    # 7-instruction example (occupancy steps at 3/4/6/8 VGPRs).
    machine = simple_test_target()
    region = figure1_region()
    ddg = DDG(region)
    print("=== Figure 1 of the paper, on the tiny target ===\n")

    amd = AMDMaxOccupancyScheduler(machine)
    show("AMD max-occupancy baseline", amd.schedule(ddg), machine)

    seq = SequentialACOScheduler(machine).schedule(ddg, seed=42)
    show("Sequential two-pass ACO (CPU)", seq.schedule, machine)
    print(
        "pass 1: invoked=%s iterations=%d | pass 2: invoked=%s iterations=%d | "
        "modelled CPU time %.1f us\n"
        % (
            seq.pass1.invoked,
            seq.pass1.iterations,
            seq.pass2.invoked,
            seq.pass2.iterations,
            seq.seconds * 1e6,
        )
    )

    par = ParallelACOScheduler(
        machine, gpu_params=GPUParams(blocks=4)
    ).schedule(ddg, seed=42)
    show("Parallel ACO (256 ants on the simulated GPU)", par.schedule, machine)
    print(
        "modelled GPU time %.1f us (kernel %.1f + transfer %.1f + launch %.1f)\n"
        % (
            par.seconds * 1e6,
            (par.pass1.kernel_seconds + par.pass2.kernel_seconds) * 1e6,
            (par.pass1.transfer_seconds + par.pass2.transfer_seconds) * 1e6,
            (par.pass1.launch_seconds + par.pass2.launch_seconds) * 1e6,
        )
    )

    print("=== A custom region on the full Vega 20 model ===\n")
    vega = amd_vega20()
    custom = DDG(build_custom_region())
    show("AMD baseline", AMDMaxOccupancyScheduler(vega).schedule(custom), vega)
    result = ParallelACOScheduler(vega, gpu_params=GPUParams(blocks=4)).schedule(
        custom, seed=0
    )
    show("Parallel ACO", result.schedule, vega)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a JSONL telemetry trace of the run and print its profile",
    )
    args = parser.parse_args()

    if args.trace:
        from repro.telemetry import JSONLSink, Telemetry, telemetry_session
        from repro.telemetry.report import summarize_trace

        with telemetry_session(Telemetry(sink=JSONLSink(args.trace))):
            main()
        print("=== Telemetry trace (%s) ===\n" % args.trace)
        print(summarize_trace(args.trace))
    else:
        main()
