"""Extension bench: convergence of the ACO search.

Plots (as text) the per-iteration winner cost of the parallel colony
against the sequential scheduler on one hard region, with relaxed
termination so the whole curve is visible. The paper's tiny termination
conditions (1-3 stagnant iterations) bank on exactly this shape: most of
the improvement lands in the first couple of iterations, because an
11,520-ant iteration is already a deep sample of the schedule space.
"""

import random

from repro.config import ACOParams, GPUParams
from repro.ddg import DDG
from repro.experiments.report import ExperimentTable
from repro.machine import amd_vega20
from repro.aco import SequentialACOScheduler
from repro.parallel import ParallelACOScheduler
from repro.suite.patterns import pattern_region


def bench_convergence(benchmark):
    machine = amd_vega20()
    region = pattern_region("reduce", random.Random(11), 110)
    ddg = DDG(region)
    params = ACOParams(termination_conditions=(5, 5, 5), max_iterations=8)

    def compute():
        seq = SequentialACOScheduler(machine, params=params).schedule(ddg, seed=1)
        par = ParallelACOScheduler(
            machine, params=params, gpu_params=GPUParams(blocks=6)
        ).schedule(ddg, seed=1)
        table = ExperimentTable(
            "Extension: pass-2 convergence (winner length per iteration)",
            ("Iteration", "Sequential (10 ants)", "Parallel (384 ants)"),
        )
        rounds = max(len(seq.pass2.trace), len(par.pass2.trace))
        for i in range(rounds):
            s = seq.pass2.trace[i] if i < len(seq.pass2.trace) else "-"
            p = par.pass2.trace[i] if i < len(par.pass2.trace) else "-"
            table.add_row(i + 1, s, p)
        table.add_row("final", seq.length, par.length)
        table.add_note(
            "more ants per iteration -> better winners sooner; the paper's "
            "stagnation-based termination harvests the early iterations"
        )
        return table

    print()
    print(benchmark.pedantic(compute, rounds=1, iterations=1).render())
