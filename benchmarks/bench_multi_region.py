"""Extension bench: multi-region batch scheduling (Section VII future work).

Schedules a pool of small ACO-eligible regions both individually (the
paper's design: one launch per region) and as batches, and reports the
amortization speedup the batching delivers on the launch/transfer-bound
small-region class — the class where Table 3 shows the weakest per-region
speedups.
"""

from repro.config import GPUParams
from repro.ddg import DDG
from repro.experiments.report import ExperimentTable
from repro.machine import amd_vega20
from repro.parallel import BatchItem, MultiRegionScheduler
from repro.suite.patterns import pattern_region

import random


def _eligible_items(count, size, machine):
    items = []
    seed = 0
    while len(items) < count and seed < count * 10:
        region = pattern_region("reduce", random.Random(seed), size)
        items.append(BatchItem(ddg=DDG(region), seed=seed))
        seed += 1
    return items


def bench_multi_region_amortization(benchmark):
    machine = amd_vega20()

    def compute():
        table = ExperimentTable(
            "Extension: multi-region batching (Section VII future work)",
            ("Batch size", "Individual (us)", "Batched (us)", "Amortization"),
        )
        for batch_size in (2, 4, 8):
            scheduler = MultiRegionScheduler(
                machine, gpu_params=GPUParams(blocks=max(8, batch_size))
            )
            items = _eligible_items(batch_size, 30, machine)
            batch = scheduler.schedule_batch(items)
            table.add_row(
                batch_size,
                "%.1f" % (batch.unbatched_seconds * 1e6),
                "%.1f" % (batch.seconds * 1e6),
                "%.2fx" % batch.amortization_speedup,
            )
        table.add_note(
            "per-region quality is unchanged for easy regions; hard regions "
            "get fewer ants per iteration when batched"
        )
        return table

    print()
    print(benchmark.pedantic(compute, rounds=1, iterations=1).render())
