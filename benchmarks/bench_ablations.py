"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablations (Tables 4 and 6), these cover:

* the transitive-closure ready-list bound vs. the trivial bound ``n``
  (how much per-ant state the Section V-A sizing trick saves);
* the post-scheduling filter economics (how many regions it reverts, and
  what the suite-level quality would be without it);
* scheduler micro-benchmarks: raw single-region scheduling throughput for
  the greedy baseline, the sequential ACO and the vectorized colony.
"""

import random

from repro.config import ACOParams, FilterParams, GPUParams
from repro.ddg import DDG, TransitiveClosure
from repro.experiments.report import ExperimentTable
from repro.heuristics import AMDMaxOccupancyScheduler
from repro.aco import SequentialACOScheduler
from repro.parallel import ParallelACOScheduler, RegionDeviceData
from repro.suite.patterns import pattern_region


def bench_ready_list_bound(benchmark, warm_context):
    """The tight bound's saving on per-ant state, across the suite."""
    context = warm_context

    def compute():
        table = ExperimentTable(
            "Ablation: ready-list bound (tight closure bound vs trivial n)",
            ("Stat", "Value"),
        )
        ants = context.scale.gpu.total_threads
        tight_bytes = loose_bytes = 0
        ratios = []
        for _kernel, region in context.suite.all_regions():
            ddg = DDG(region)
            tight = RegionDeviceData(ddg, context.machine, tight_ready_bound=True)
            loose = RegionDeviceData(ddg, context.machine, tight_ready_bound=False)
            tight_bytes += tight.per_ant_state_bytes(ants)
            loose_bytes += loose.per_ant_state_bytes(ants)
            ratios.append(tight.ready_capacity / max(1, loose.ready_capacity))
        table.add_row("regions", len(ratios))
        table.add_row("mean capacity ratio (tight/trivial)", sum(ratios) / len(ratios))
        table.add_row("per-ant state, tight bound (MB)", tight_bytes / 1e6)
        table.add_row("per-ant state, trivial bound (MB)", loose_bytes / 1e6)
        table.add_row("saving", "%.1f%%" % (100 * (1 - tight_bytes / loose_bytes)))
        return table

    print()
    print(benchmark.pedantic(compute, rounds=1, iterations=1).render())


def bench_post_filter(benchmark, warm_context):
    """What the post-scheduling filter reverts and what it protects."""
    context = warm_context

    def compute():
        run = context.run("parallel")
        table = ExperimentTable(
            "Ablation: post-scheduling filter (+3 occupancy vs +63 cycles)",
            ("Stat", "With filter", "Without filter"),
        )
        kept = reverted = 0
        len_with = len_without = len_heur = 0
        for _kernel, outcome in run.all_regions():
            len_heur += outcome.heuristic.length
            len_with += outcome.final.length
            if outcome.aco is not None:
                len_without += outcome.aco.length
                if outcome.decision.value == "reverted-to-heuristic":
                    reverted += 1
                else:
                    kept += 1
            else:
                len_without += outcome.heuristic.length
        table.add_row("ACO schedules kept / reverted", kept, reverted)
        table.add_row(
            "total length vs heuristic",
            "%+.2f%%" % (100.0 * (len_with - len_heur) / len_heur),
            "%+.2f%%" % (100.0 * (len_without - len_heur) / len_heur),
        )
        return table

    print()
    print(benchmark.pedantic(compute, rounds=1, iterations=1).render())


def bench_greedy_scheduler(benchmark):
    """Raw throughput: AMD greedy list scheduling of a 100-inst region."""
    from repro.machine import amd_vega20

    machine = amd_vega20()
    ddg = DDG(pattern_region("transform", random.Random(5), 100))
    amd = AMDMaxOccupancyScheduler(machine)
    schedule = benchmark(amd.schedule, ddg)
    assert schedule.length >= 100


def bench_sequential_aco(benchmark):
    """Raw throughput: sequential two-pass ACO on a 60-inst region."""
    from repro.machine import amd_vega20

    machine = amd_vega20()
    ddg = DDG(pattern_region("reduce", random.Random(5), 60))
    scheduler = SequentialACOScheduler(machine)
    result = benchmark(scheduler.schedule, ddg, 1)
    assert result.schedule.length >= 60


def bench_parallel_colony(benchmark):
    """Raw throughput: one vectorized colony invocation (128 ants)."""
    from repro.machine import amd_vega20

    machine = amd_vega20()
    ddg = DDG(pattern_region("reduce", random.Random(5), 60))
    scheduler = ParallelACOScheduler(machine, gpu_params=GPUParams(blocks=2))
    result = benchmark.pedantic(
        scheduler.schedule, args=(ddg,), kwargs={"seed": 1}, rounds=3, iterations=1
    )
    assert result.schedule.length >= 60
