"""Regenerates Table 1 — benchmark statistics.

Prints the table in the paper's row layout (with the published values in
the Paper column) and reports the harness time through pytest-benchmark.
"""

from repro.experiments import EXPERIMENTS

from conftest import render_result


def bench_table1(benchmark, warm_context):
    result = benchmark.pedantic(
        EXPERIMENTS["table1"], args=(warm_context,), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
