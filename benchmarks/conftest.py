"""Benchmark-harness fixtures.

Each ``bench_*.py`` regenerates one table or figure of the paper and prints
it. The suite scale is selected with ``REPRO_SCALE`` (default ``test`` here
so ``pytest benchmarks/ --benchmark-only`` completes in minutes; use
``REPRO_SCALE=default`` for the numbers recorded in EXPERIMENTS.md).

The expensive artifacts (the suite compiled under every scheduler) are
shared across benches through a session-scoped context, so each bench's
*measured* time is the table's own computation on top of the shared runs;
the first bench that needs a given compile run pays for it.

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to record the whole bench
session's telemetry (region outcomes, ACO iterations, simulated kernel
launches) as JSONL; summarize it afterwards with
``python -m repro.telemetry.report /path/to/trace.jsonl``. Set
``REPRO_PROFILE=/path/to/stacks.txt`` to span-profile the session's
simulated time and write the collapsed-stack file (flamegraph.pl /
speedscope input; the span tree is printed to stdout at session end).

Set ``REPRO_CHAOS=<seed>`` to run the whole bench session under the
deterministic fault model: the compile pipeline resolves the resilience
parameters from the environment, so every region passes through the retry
ladder, and the session prints the resilience summary (faults, retries,
degrades) at the end. The benches must still complete — recovery is the
point — but their numbers are *not* comparable to fault-free baselines
(retries burn budget), so chaos sessions are for robustness checking, not
regression gating.
"""

from __future__ import annotations

import os
from contextlib import ExitStack

import pytest

from repro.experiments import SCALES
from repro.experiments.common import ExperimentContext
from repro.profile import SpanProfiler, profile_session, render_tree, write_collapsed
from repro.telemetry import JSONLSink, Telemetry, telemetry_session


@pytest.fixture(scope="session")
def context():
    scale_name = os.environ.get("REPRO_SCALE", "test")
    if scale_name not in SCALES:
        raise pytest.UsageError(
            "unknown REPRO_SCALE %r (valid scales: %s)"
            % (scale_name, ", ".join(sorted(SCALES)))
        )
    scale = SCALES[scale_name]

    trace_path = os.environ.get("REPRO_TRACE")
    stacks_path = os.environ.get("REPRO_PROFILE")
    chaos = os.environ.get("REPRO_CHAOS", "").strip()
    with ExitStack() as stack:
        if chaos:
            from repro.resilience.log import reset_resilience_log

            resilience_log = reset_resilience_log()
            print("\n[chaos] bench session under REPRO_CHAOS=%s" % chaos)

            def _report() -> None:
                print("\n[chaos] resilience summary: %s" % resilience_log.summary())

            stack.callback(_report)
        telemetry = None
        if trace_path:
            telemetry = Telemetry(sink=JSONLSink(trace_path))
            stack.callback(telemetry.close)
            stack.enter_context(telemetry_session(telemetry))
        profiler = None
        if stacks_path:
            profiler = SpanProfiler()
            stack.enter_context(profile_session(profiler))
        yield ExperimentContext(scale, telemetry=telemetry)
        if profiler is not None:
            print()
            print(render_tree(profiler.root))
            write_collapsed(stacks_path, profiler.root)
            print("[collapsed stacks written to %s]" % stacks_path)


@pytest.fixture(scope="session")
def warm_context(context):
    """Context with the three standard compile runs already built."""
    context.run("baseline")
    context.run("sequential")
    context.run("parallel")
    context.run("cp")
    return context


def render_result(result) -> str:
    if isinstance(result, list):
        return "\n".join(t.render() for t in result)
    return result.render()
