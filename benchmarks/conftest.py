"""Benchmark-harness fixtures.

Each ``bench_*.py`` regenerates one table or figure of the paper and prints
it. The suite scale is selected with ``REPRO_SCALE`` (default ``test`` here
so ``pytest benchmarks/ --benchmark-only`` completes in minutes; use
``REPRO_SCALE=default`` for the numbers recorded in EXPERIMENTS.md).

The expensive artifacts (the suite compiled under every scheduler) are
shared across benches through a session-scoped context, so each bench's
*measured* time is the table's own computation on top of the shared runs;
the first bench that needs a given compile run pays for it.

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to record the whole bench
session's telemetry (region outcomes, ACO iterations, simulated kernel
launches) as JSONL; summarize it afterwards with
``python -m repro.telemetry.report /path/to/trace.jsonl``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SCALES
from repro.experiments.common import ExperimentContext
from repro.telemetry import JSONLSink, Telemetry


@pytest.fixture(scope="session")
def context():
    scale_name = os.environ.get("REPRO_SCALE", "test")
    if scale_name not in SCALES:
        raise pytest.UsageError(
            "unknown REPRO_SCALE %r (valid scales: %s)"
            % (scale_name, ", ".join(sorted(SCALES)))
        )
    scale = SCALES[scale_name]

    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        telemetry = Telemetry(sink=JSONLSink(trace_path))
        try:
            yield ExperimentContext(scale, telemetry=telemetry)
        finally:
            telemetry.close()
    else:
        yield ExperimentContext(scale)


@pytest.fixture(scope="session")
def warm_context(context):
    """Context with the three standard compile runs already built."""
    context.run("baseline")
    context.run("sequential")
    context.run("parallel")
    context.run("cp")
    return context


def render_result(result) -> str:
    if isinstance(result, list):
        return "\n".join(t.render() for t in result)
    return result.render()
