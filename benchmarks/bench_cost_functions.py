"""Ablation: two-pass vs. weighted-sum cost function (Section II-A).

The paper chooses the two-pass approach because "the two-pass approach was
found to work better on the GPU" than the weighted-sum scalarization of
its CPU-targeted predecessors. This bench reproduces that comparison: both
schedulers run on the ACO-eligible regions of the suite and are scored on
kernel occupancy (the GPU-critical objective) and schedule length.

Expected shape: the two-pass scheduler matches or beats the weighted-sum
variant on occupancy at every weight, because occupancy is a step function
of pressure — a scalar weight either under-buys pressure (losing a step)
or over-buys it (paying cycles for pressure inside a step), while the
two-pass APRP target adapts per region.
"""

from repro.aco import SequentialACOScheduler, WeightedSumACOScheduler
from repro.ddg import DDG
from repro.experiments.report import ExperimentTable
from repro.machine import amd_vega20
from repro.rp import rp_cost
from repro.suite.patterns import pattern_region

import random


def _regions():
    specs = [("reduce", 3, 60), ("reduce", 11, 90), ("gemm_tile", 31, 74),
             ("sort", 2, 50), ("stencil", 7, 60), ("transform", 5, 70)]
    return [DDG(pattern_region(p, random.Random(s), n)) for p, s, n in specs]


def bench_cost_functions(benchmark):
    machine = amd_vega20()

    def compute():
        table = ExperimentTable(
            "Ablation: two-pass vs weighted-sum cost function",
            ("Scheduler", "Sum occupancy", "Sum length", "Mean RP cost"),
        )
        regions = _regions()
        schedulers = [
            ("two-pass (paper)", SequentialACOScheduler(machine)),
            ("weighted w=0.0001", WeightedSumACOScheduler(machine, pressure_weight=0.0001)),
            ("weighted w=0.001", WeightedSumACOScheduler(machine, pressure_weight=0.001)),
            ("weighted w=0.01", WeightedSumACOScheduler(machine, pressure_weight=0.01)),
        ]
        for name, scheduler in schedulers:
            occ_sum = 0
            len_sum = 0
            cost_sum = 0
            for index, ddg in enumerate(regions):
                result = scheduler.schedule(ddg, seed=index)
                occ_sum += machine.occupancy_for_pressure(result.peak)
                len_sum += result.length
                cost_sum += rp_cost(result.peak, machine)
            table.add_row(name, occ_sum, len_sum, cost_sum / len(regions))
        table.add_note(
            "two-pass should win or tie on occupancy at every weight "
            "(Section II-A's rationale for choosing it on GPU targets)"
        )
        return table

    print()
    print(benchmark.pedantic(compute, rounds=1, iterations=1).render())
