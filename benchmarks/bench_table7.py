"""Regenerates Table 7 — cycle-based filter sweep.

Prints the table in the paper's row layout (with the published values in
the Paper column) and reports the harness time through pytest-benchmark.
"""

from repro.experiments import EXPERIMENTS

from conftest import render_result


def bench_table7(benchmark, warm_context):
    result = benchmark.pedantic(
        EXPERIMENTS["table7"], args=(warm_context,), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
