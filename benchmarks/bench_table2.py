"""Regenerates Table 2 — ACO improvement over the AMD scheduler.

Prints the table in the paper's row layout (with the published values in
the Paper column) and reports the harness time through pytest-benchmark.
"""

from repro.experiments import EXPERIMENTS

from conftest import render_result


def bench_table2(benchmark, warm_context):
    result = benchmark.pedantic(
        EXPERIMENTS["table2"], args=(warm_context,), rounds=1, iterations=1
    )
    print()
    print(render_result(result))
